//! Synchronous block-Jacobi: the barrier-synchronised counterpart of
//! async-(k).
//!
//! Every global iteration, **all** blocks compute their update from the
//! *same* snapshot of the iterate (k local Jacobi sweeps with frozen
//! off-block values, exactly like one async-(k) block update), then a
//! barrier commits all of them at once. Comparing this method against
//! async-(k) at equal iteration counts isolates what the *asynchrony
//! itself* contributes to convergence: asynchronous blocks see some
//! already-updated neighbours (a Gauss-Seidel-like gain, cf. the paper's
//! remark that the scheme has "a block Gauss-Seidel flavor"), while the
//! synchronous variant never does. The `repro ablation` experiment
//! reports the measured gap.

use crate::async_block::AsyncJacobiKernel;
use crate::convergence::{check_system, relative_residual, SolveOptions, SolveResult};
use abr_gpu::{BlockKernel, BlockScratch, XView};
use abr_sparse::{CsrMatrix, Result, RowPartition};

/// Solves `A x = b` with synchronous block-Jacobi over the partition,
/// running `local_iters` Jacobi sweeps within each block per global
/// iteration.
pub fn block_jacobi(
    a: &CsrMatrix,
    rhs: &[f64],
    x0: &[f64],
    partition: &RowPartition,
    local_iters: usize,
    opts: &SolveOptions,
) -> Result<SolveResult> {
    check_system(a, rhs, x0);
    assert_eq!(partition.n(), a.n_rows(), "partition must cover the system");
    assert!(local_iters >= 1, "need at least one local sweep");
    let kernel = AsyncJacobiKernel::new(a, rhs, partition, local_iters, 1.0)?;

    let mut x = x0.to_vec();
    let mut x_new = x0.to_vec();
    let mut scratch = BlockScratch::new();
    let mut history = Vec::new();
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..opts.max_iters {
        // All blocks read the same snapshot `x`, results go to `x_new`.
        for b in 0..kernel.n_blocks() {
            let (s, e) = kernel.block_range(b);
            kernel.update_block_with(b, &XView::Plain(&x), &mut x_new[s..e], &mut scratch);
        }
        std::mem::swap(&mut x, &mut x_new);
        iterations += 1;

        let need_residual =
            opts.record_history || (opts.tol > 0.0 && iterations % opts.check_every == 0);
        if need_residual {
            let rr = relative_residual(a, rhs, &x);
            if opts.record_history {
                history.push(rr);
            }
            if opts.tol > 0.0 && rr <= opts.tol {
                converged = true;
                break;
            }
            if !rr.is_finite() {
                break;
            }
        }
    }

    let final_residual = relative_residual(a, rhs, &x);
    if opts.tol > 0.0 && final_residual <= opts.tol {
        converged = true;
    }
    Ok(SolveResult { x, iterations, converged, final_residual, history, fault: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::jacobi;
    use crate::{AsyncBlockSolver, ExecutorKind};
    use abr_gpu::SimOptions;
    use abr_sparse::gen::laplacian_2d_5pt;

    fn setup(m: usize) -> (CsrMatrix, Vec<f64>, Vec<f64>) {
        let a = laplacian_2d_5pt(m);
        let n = a.n_rows();
        let b = a.mul_vec(&vec![1.0; n]).unwrap();
        (a, b, vec![0.0; n])
    }

    #[test]
    fn scalar_blocks_single_sweep_is_exactly_jacobi() {
        let (a, b, x0) = setup(6);
        let p = RowPartition::uniform(36, 1).unwrap();
        let opts = SolveOptions::fixed_iterations(12);
        let bj = block_jacobi(&a, &b, &x0, &p, 1, &opts).unwrap();
        let j = jacobi(&a, &b, &x0, &opts).unwrap();
        for (x1, x2) in bj.x.iter().zip(&j.x) {
            assert!((x1 - x2).abs() < 1e-14);
        }
    }

    #[test]
    fn single_block_is_k_jacobi_sweeps() {
        let (a, b, x0) = setup(5);
        let p = RowPartition::uniform(25, 25).unwrap();
        let k3 = block_jacobi(&a, &b, &x0, &p, 3, &SolveOptions::fixed_iterations(4)).unwrap();
        let j12 = jacobi(&a, &b, &x0, &SolveOptions::fixed_iterations(12)).unwrap();
        for (x1, x2) in k3.x.iter().zip(&j12.x) {
            assert!((x1 - x2).abs() < 1e-13);
        }
    }

    #[test]
    fn converges_and_beats_point_jacobi() {
        let (a, b, x0) = setup(10);
        let p = RowPartition::uniform(100, 10).unwrap();
        let opts = SolveOptions::to_tolerance(1e-9, 100_000);
        let bj = block_jacobi(&a, &b, &x0, &p, 5, &opts).unwrap();
        let j = jacobi(&a, &b, &x0, &opts).unwrap();
        assert!(bj.converged && j.converged);
        assert!(
            bj.iterations < j.iterations,
            "block-Jacobi {} vs Jacobi {}",
            bj.iterations,
            j.iterations
        );
    }

    #[test]
    fn asynchrony_accelerates_over_synchronous_blocks() {
        // The design claim isolated: same kernel, same partition, same
        // local sweeps — the only difference is the barrier. The chaotic
        // version reads fresher values and converges faster.
        let (a, b, x0) = setup(12);
        let n = 144;
        let p = RowPartition::uniform(n, 12).unwrap();
        let iters = 120;
        let sync = block_jacobi(&a, &b, &x0, &p, 5, &SolveOptions::fixed_iterations(iters))
            .unwrap();
        let solver = AsyncBlockSolver {
            executor: ExecutorKind::Sim(SimOptions { n_workers: 4, jitter: 0.4, seed: 3 }),
            ..AsyncBlockSolver::async_k(5)
        };
        let async_r = solver
            .solve(&a, &b, &x0, &p, &SolveOptions::fixed_iterations(iters))
            .unwrap();
        assert!(
            async_r.final_residual < sync.final_residual,
            "async {} vs sync {}",
            async_r.final_residual,
            sync.final_residual
        );
    }

    #[test]
    fn divergent_when_rho_above_one() {
        let a = abr_sparse::gen::structural_biharmonic_sq(10, 2.65).unwrap();
        let n = a.n_rows();
        let b = a.mul_vec(&vec![1.0; n]).unwrap();
        let p = RowPartition::uniform(n, 10).unwrap();
        let r = block_jacobi(&a, &b, &vec![0.0; n], &p, 5, &SolveOptions::fixed_iterations(30))
            .unwrap();
        assert!(r.final_residual > 1.0, "{}", r.final_residual);
    }
}
