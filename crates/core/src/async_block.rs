//! **async-(k)** — the paper's block-asynchronous iteration
//! (§3.3, Algorithm 1, Eq. 4).
//!
//! The system's rows are partitioned into blocks ("subdomains", one per
//! GPU thread block). Each block update:
//!
//! 1. reads the shared iterate (possibly mid-flight values written by
//!    other blocks — the asynchronous outer loop),
//! 2. freezes the off-block contribution
//!    `s_i = b_i - sum_{j outside block} a_ij x_j`,
//! 3. performs `k` synchronous Jacobi sweeps *within* the block using the
//!    frozen off-block part,
//! 4. publishes the block's new values.
//!
//! With `k = 1` this is the paper's `async-(1)` basic asynchronous
//! iteration; `k = 5` is the `async-(5)` used throughout its evaluation.
//! The executor (from `abr-gpu`) decides the interleaving: the seeded
//! discrete-event simulator for reproducible experiments, or real threads
//! for genuine hardware chaos.

use crate::convergence::{check_system, relative_residual_with, SolveOptions, SolveResult};
use abr_gpu::kernel::AllowAll;
use abr_gpu::schedule::BlockSchedule;
use abr_gpu::{
    BlockKernel, BlockScratch, CancelToken, ConvergenceMonitor, FaultPlan, HaloExchange, Lease,
    PersistentExecutor, PersistentOptions, PersistentWorkspace, RandomPermutation,
    RecurringPattern, RoundRobin, RunSession, ShardPlan, SimExecutor, SimOptions,
    ThreadedExecutor, ThreadedOptions, UpdateFilter, UpdateTrace, WorkerPool, XView,
};
use abr_sparse::block_plan::BlockEll;
use abr_sparse::simd::{f64x4, LANES};
use abr_sparse::stencil::{StencilBlock, StencilDescriptor};
use abr_sparse::{BlockPlan, CsrMatrix, Result, RowPartition, SweepTier};

/// Which block-dispatch schedule the solver uses (see
/// [`abr_gpu::schedule`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Blocks in index order every round.
    RoundRobin,
    /// Fresh seeded shuffle every round.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// One seeded shuffle reused every round (the paper's inferred GPU
    /// behaviour).
    Recurring {
        /// RNG seed.
        seed: u64,
    },
}

impl ScheduleKind {
    fn build(&self) -> Box<dyn BlockSchedule> {
        match *self {
            ScheduleKind::RoundRobin => Box::new(RoundRobin),
            ScheduleKind::Random { seed } => Box::new(RandomPermutation::new(seed)),
            ScheduleKind::Recurring { seed } => Box::new(RecurringPattern::new(seed)),
        }
    }
}

/// The inner (subdomain) sweep type. Algorithm 1 of the paper uses
/// Jacobi sweeps; its reference for the idea — Bai, Migallón, Penadés,
/// Szyld, *Block and asynchronous two-stage methods* — allows any inner
/// solver, and Gauss-Seidel is the natural stronger choice (free on a
/// single SM where the block is processed by cooperating threads anyway).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalSweep {
    /// Jacobi sweeps on the subdomain (the paper's Algorithm 1).
    #[default]
    Jacobi,
    /// Gauss-Seidel sweeps on the subdomain (two-stage variant).
    GaussSeidel,
}

/// Which execution fabric runs the blocks.
#[derive(Debug, Clone)]
pub enum ExecutorKind {
    /// Seeded discrete-event simulation (reproducible).
    Sim(SimOptions),
    /// Real OS threads over an atomic shared vector (non-deterministic).
    /// Solves to tolerance through the persistent-worker executor
    /// ([`abr_gpu::persistent`]): workers spawned once, convergence
    /// checked concurrently by the calling thread. Falls back to the
    /// chunked-respawn driver only when `record_history` demands
    /// per-round snapshots.
    Threaded(ThreadedOptions),
    /// The legacy chunked-respawn threaded path: the driver respawns the
    /// whole thread scope every `check_every` rounds and blocks on a
    /// host-side residual between chunks. Kept as the measurable baseline
    /// the persistent executor is benchmarked against
    /// (`benches/executors.rs`); prefer [`ExecutorKind::Threaded`].
    ThreadedChunked(ThreadedOptions),
}

impl Default for ExecutorKind {
    fn default() -> Self {
        ExecutorKind::Sim(SimOptions::default())
    }
}

/// The block-asynchronous solver configuration.
///
/// # Examples
///
/// ```
/// use abr_core::{AsyncBlockSolver, SolveOptions};
/// use abr_sparse::{gen, RowPartition};
///
/// let a = gen::laplacian_2d_5pt(10);
/// let b = a.mul_vec(&vec![1.0; 100]).unwrap();
/// let partition = RowPartition::uniform(100, 20).unwrap();
/// let result = AsyncBlockSolver::async_k(5)
///     .solve(&a, &b, &vec![0.0; 100], &partition,
///            &SolveOptions::to_tolerance(1e-9, 10_000))
///     .unwrap();
/// assert!(result.converged);
/// ```
#[derive(Debug, Clone)]
pub struct AsyncBlockSolver {
    /// Number of local Jacobi sweeps per block update (the `k` in
    /// async-(k)). The paper settles on 5 (§4.3).
    pub local_iters: usize,
    /// Block dispatch order.
    pub schedule: ScheduleKind,
    /// Execution fabric.
    pub executor: ExecutorKind,
    /// Relaxation damping `tau` applied to every component update
    /// (`1.0` = plain Jacobi update; §4.2's remedy for `rho(B) > 1`
    /// systems uses `tau = 2/(lambda_1 + lambda_n)`).
    pub damping: f64,
    /// Inner sweep type on the subdomains.
    pub local_sweep: LocalSweep,
}

impl Default for AsyncBlockSolver {
    /// The paper's tuned configuration. The executor runs 4 concurrent
    /// block groups rather than one per SM: the paper launches its
    /// kernels through a tuned number of CUDA *streams*, and successive
    /// launches within a stream serialise — so the effective concurrency
    /// of block updates is the stream count, not the SM count. Lower
    /// concurrency means more updates read freshly written neighbours
    /// (the "block Gauss-Seidel flavor" the paper notes), which is what
    /// buys async-(5) its ~2x-over-Gauss-Seidel convergence on the fv
    /// family. Raise `n_workers` to explore the fully concurrent end.
    fn default() -> Self {
        AsyncBlockSolver {
            local_iters: 5,
            schedule: ScheduleKind::Random { seed: 0 },
            executor: ExecutorKind::Sim(SimOptions { n_workers: 4, jitter: 0.3, seed: 0 }),
            damping: 1.0,
            local_sweep: LocalSweep::Jacobi,
        }
    }
}

impl AsyncBlockSolver {
    /// async-(k) with the given local iteration count, defaults otherwise.
    pub fn async_k(local_iters: usize) -> Self {
        AsyncBlockSolver { local_iters, ..Default::default() }
    }

    /// Solves `A x = b` from `x0` over the row partition.
    pub fn solve(
        &self,
        a: &CsrMatrix,
        rhs: &[f64],
        x0: &[f64],
        partition: &RowPartition,
        opts: &SolveOptions,
    ) -> Result<SolveResult> {
        self.solve_filtered(a, rhs, x0, partition, opts, &AllowAll)
    }

    /// Solves with an [`UpdateFilter`] deciding which updates commit —
    /// the fault-injection entry point used by `abr-fault`. Filter rounds
    /// are global-iteration indices from the start of the solve.
    pub fn solve_filtered(
        &self,
        a: &CsrMatrix,
        rhs: &[f64],
        x0: &[f64],
        partition: &RowPartition,
        opts: &SolveOptions,
        filter: &dyn UpdateFilter,
    ) -> Result<SolveResult> {
        assert_eq!(partition.n(), a.n_rows(), "partition must cover the system");
        let kernel = AsyncJacobiKernel::with_sweep(
            a,
            rhs,
            partition,
            self.local_iters,
            self.damping,
            self.local_sweep,
        )?;
        self.solve_with_kernel(a, rhs, x0, &kernel, opts, filter)
    }

    /// Solves with a verified [`StencilDescriptor`] enabling the
    /// matrix-free sweep tier — the entry point for constant-coefficient
    /// stencil operators (the `gen::*_stencil` generators return the
    /// `(matrix, descriptor)` pair). Numerically identical to
    /// [`solve`](Self::solve): the stencil tier is bit-compatible with
    /// the stored-matrix tiers, only faster.
    pub fn solve_with_stencil(
        &self,
        a: &CsrMatrix,
        rhs: &[f64],
        x0: &[f64],
        partition: &RowPartition,
        descriptor: &StencilDescriptor,
        opts: &SolveOptions,
    ) -> Result<SolveResult> {
        assert_eq!(partition.n(), a.n_rows(), "partition must cover the system");
        let kernel = AsyncJacobiKernel::with_sweep_and_stencil(
            a,
            rhs,
            partition,
            self.local_iters,
            self.damping,
            self.local_sweep,
            Some(descriptor),
        )?;
        self.solve_with_kernel(a, rhs, x0, &kernel, opts, &AllowAll)
    }

    /// Solves with an already-compiled kernel. This lets callers that
    /// need the kernel for other purposes (e.g. `abr-multigpu` feeds
    /// [`AsyncJacobiKernel::nnz_local`] to the timing model) compile the
    /// block plan once instead of once per use. The kernel's numerics
    /// (`k`, damping, sweep type) are its own; `self` contributes the
    /// schedule, executor, and chunked convergence driving.
    pub fn solve_with_kernel(
        &self,
        a: &CsrMatrix,
        rhs: &[f64],
        x0: &[f64],
        kernel: &AsyncJacobiKernel<'_>,
        opts: &SolveOptions,
        filter: &dyn UpdateFilter,
    ) -> Result<SolveResult> {
        check_system(a, rhs, x0);
        assert!(self.local_iters >= 1, "async-(k) needs k >= 1");
        let mut schedule = self.schedule.build();

        // The persistent path: workers spawned once for the whole solve,
        // convergence monitored concurrently — no chunk barriers at all.
        // Only per-round history recording still needs the chunked driver
        // (the monitor observes the iterate at check periods, not rounds).
        if let ExecutorKind::Threaded(_) = &self.executor {
            if !opts.record_history {
                return self
                    .solve_persistent_sharded(a, rhs, x0, kernel, opts, filter, None, None)
                    .map(|(result, _trace)| result);
            }
        }

        let mut x = x0.to_vec();
        let mut history: Vec<f64> = Vec::new();
        let mut iterations = 0usize;
        let mut converged = false;
        let mut rbuf: Vec<f64> = Vec::new();

        // Chunked driving: the executor runs `chunk` asynchronous global
        // rounds at a time; between chunks the *driver* (host) checks
        // convergence, exactly like the paper's host-side residual tests.
        let chunk = if opts.tol > 0.0 { opts.check_every.max(1) } else { opts.max_iters };
        while iterations < opts.max_iters && !converged {
            let rounds = chunk.min(opts.max_iters - iterations);
            let offset_filter = OffsetFilter { inner: filter, offset: iterations };
            let mut offset_schedule =
                OffsetSchedule { inner: schedule.as_mut(), offset: iterations };
            match &self.executor {
                ExecutorKind::Sim(sim_opts) => {
                    let exec = SimExecutor::new(SimOptions {
                        // decorrelate chunk seeds while staying reproducible
                        seed: sim_opts.seed.wrapping_add(iterations as u64),
                        ..sim_opts.clone()
                    });
                    exec.run(
                        kernel,
                        &mut x,
                        rounds,
                        &mut offset_schedule,
                        &offset_filter,
                        |_k, xk| {
                            if opts.record_history {
                                history.push(relative_residual_with(&mut rbuf, a, rhs, xk));
                            }
                        },
                    );
                }
                ExecutorKind::Threaded(t_opts) | ExecutorKind::ThreadedChunked(t_opts) => {
                    let exec = ThreadedExecutor::new(ThreadedOptions {
                        snapshot_rounds: opts.record_history,
                        ..t_opts.clone()
                    });
                    let (x_new, _trace, snaps) =
                        exec.run(kernel, &x, rounds, &mut offset_schedule, &offset_filter);
                    if opts.record_history {
                        for snap in &snaps {
                            history.push(relative_residual_with(&mut rbuf, a, rhs, snap));
                        }
                    }
                    x = x_new;
                }
            }
            iterations += rounds;
            if opts.tol > 0.0 {
                let rr = relative_residual_with(&mut rbuf, a, rhs, &x);
                if rr <= opts.tol {
                    converged = true;
                } else if !rr.is_finite() {
                    break;
                }
            }
        }

        let final_residual = relative_residual_with(&mut rbuf, a, rhs, &x);
        if opts.tol > 0.0 && final_residual <= opts.tol {
            converged = true;
        }
        Ok(SolveResult { x, iterations, converged, final_residual, history, fault: None })
    }

    /// The persistent-worker solve: spawns the executor's workers once,
    /// runs them against the whole `max_iters` budget, and checks
    /// convergence *concurrently* through a [`ResidualMonitor`] every
    /// `check_every` global iterations — the paper's host watching the
    /// racy iterate while the device keeps updating. Zero thread spawns,
    /// zero full-vector copies, and zero allocation after solve start,
    /// except the monitor's reused snapshot and residual buffers.
    ///
    /// With `shards`, the executor's ticket pools are the plan's block
    /// ranges — a multi-GPU driver passes its device slices so the shard
    /// topology is the device topology, not the worker count. With
    /// `halo`, workers read off-shard components through the exchange's
    /// staged views (AMC/DC semantics); pass `None` for live reads (the
    /// single-device and DK semantics). Returns the solve result *and*
    /// the executor's [`UpdateTrace`] — the realised staleness histogram
    /// and skew watermark are exactly what the paper's Fig. 12–14
    /// strategy comparison is about.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_persistent_sharded(
        &self,
        a: &CsrMatrix,
        rhs: &[f64],
        x0: &[f64],
        kernel: &AsyncJacobiKernel<'_>,
        opts: &SolveOptions,
        filter: &dyn UpdateFilter,
        shards: Option<&ShardPlan>,
        halo: Option<&HaloExchange>,
    ) -> Result<(SolveResult, UpdateTrace)> {
        check_system(a, rhs, x0);
        let n_workers = match &self.executor {
            ExecutorKind::Threaded(t) | ExecutorKind::ThreadedChunked(t) => t.n_workers,
            ExecutorKind::Sim(_) => ThreadedOptions::default().n_workers,
        };
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers,
            ..PersistentOptions::default()
        });
        let mut schedule = self.schedule.build();
        let period = if opts.tol > 0.0 { opts.check_every.max(1) } else { 0 };
        let mut monitor = ResidualMonitor::new(a, rhs, opts.tol, period);
        let mut ws = PersistentWorkspace::new();
        let mut x = x0.to_vec();
        let (trace, report) = exec.run_sharded(
            kernel,
            &mut x,
            opts.max_iters,
            schedule.as_mut(),
            filter,
            &mut monitor,
            &mut ws,
            shards,
            halo,
        );
        // The monitor's stop watermark is the meaningful iteration count;
        // an unstopped run consumed the full budget.
        let iterations = report.stopped_at.unwrap_or(opts.max_iters);
        let mut rbuf = monitor.into_scratch();
        let final_residual = relative_residual_with(&mut rbuf, a, rhs, &x);
        let converged = opts.tol > 0.0 && final_residual <= opts.tol;
        Ok((
            SolveResult { x, iterations, converged, final_residual, history: Vec::new(), fault: None },
            trace,
        ))
    }

    /// The live-fault solve (§4.5 realised): runs the persistent-worker
    /// executor under a [`FaultPlan`] — workers really die, hang, or go
    /// panicky mid-solve; the concurrent monitor detects stalled
    /// heartbeats and, in the recovery-(t_r) regime, releases orphaned
    /// shards for adoption by the survivors. Where
    /// [`solve_filtered`](Self::solve_filtered) with an
    /// `abr_fault::ComponentFailure` *models* the outage analytically
    /// (silently dropping updates on a schedule), this entry point
    /// *realises* it: detection latency, reassignment rounds, and the
    /// widened staleness bound are all measured, not assumed.
    ///
    /// `tuning` overrides the executor's fault-runtime knobs (worker
    /// count, `detect_after_rounds`, `stall_timeout`); `None` takes the
    /// solver's executor worker count with default detection pacing.
    /// Returns the full [`FaultedSolve`]: the result (with
    /// [`SolveResult::fault`] populated), the executor trace, the raw
    /// [`PersistentReport`], and the monitor's concurrent residual
    /// trajectory.
    #[allow(clippy::too_many_arguments)] // solve signature + plan and tuning
    pub fn solve_faulted(
        &self,
        a: &CsrMatrix,
        rhs: &[f64],
        x0: &[f64],
        partition: &RowPartition,
        opts: &SolveOptions,
        plan: &FaultPlan,
        tuning: Option<&PersistentOptions>,
    ) -> Result<FaultedSolve> {
        check_system(a, rhs, x0);
        assert_eq!(partition.n(), a.n_rows(), "partition must cover the system");
        let kernel = AsyncJacobiKernel::with_sweep(
            a,
            rhs,
            partition,
            self.local_iters,
            self.damping,
            self.local_sweep,
        )?;
        let exec_opts = match tuning {
            Some(t) => t.clone(),
            None => {
                let n_workers = match &self.executor {
                    ExecutorKind::Threaded(t) | ExecutorKind::ThreadedChunked(t) => t.n_workers,
                    ExecutorKind::Sim(_) => ThreadedOptions::default().n_workers,
                };
                PersistentOptions { n_workers, ..PersistentOptions::default() }
            }
        };
        let exec = PersistentExecutor::new(exec_opts);
        let mut schedule = self.schedule.build();
        let period = if opts.tol > 0.0 { opts.check_every.max(1) } else { 0 };
        let mut monitor = ResidualMonitor::new(a, rhs, opts.tol, period);
        let mut ws = PersistentWorkspace::new();
        let mut x = x0.to_vec();
        let (trace, report) = exec.run_faulted(
            &kernel,
            &mut x,
            opts.max_iters,
            schedule.as_mut(),
            &AllowAll,
            &mut monitor,
            &mut ws,
            None,
            None,
            Some(plan),
        );
        let iterations = report.stopped_at.unwrap_or(opts.max_iters);
        let checks = std::mem::take(&mut monitor.checks);
        let mut rbuf = monitor.into_scratch();
        let final_residual = relative_residual_with(&mut rbuf, a, rhs, &x);
        let converged = opts.tol > 0.0 && final_residual <= opts.tol;
        let result = SolveResult {
            x,
            iterations,
            converged,
            final_residual,
            history: Vec::new(),
            fault: Some(report.fault.clone()),
        };
        Ok(FaultedSolve { result, trace, report, checks })
    }

    /// The multi-tenant solve: runs on threads **leased from a shared
    /// [`WorkerPool`]** instead of spawning a scope, so many concurrent
    /// solves multiplex one long-lived set of workers — the solve-service
    /// execution path. The shard plan is the even split over the lease
    /// size ([`ShardPlan::even`]), so a request's parallelism is exactly
    /// what admission control granted it.
    ///
    /// `run.cancel` wires a request-scoped [`CancelToken`] (client
    /// cancellation and/or deadline) into the monitor loop: within one
    /// monitor poll of the token firing, the run raises the ordinary
    /// Release stop flag, the leased workers drain, and the lease returns
    /// to the pool. The outcome is reported through
    /// [`SolveResult::fault`]'s report and `FaultedSolve.report.outcome`
    /// ([`abr_gpu::RunOutcome::Cancelled`] /
    /// [`abr_gpu::RunOutcome::DeadlineExceeded`]), with
    /// `result.iterations` the *partial* global-iteration watermark.
    /// `run.faults` optionally injects a chaos [`FaultPlan`] — the
    /// service's `--chaos` mode — contained to this request by the pool's
    /// per-slice `catch_unwind`.
    pub fn solve_leased(
        &self,
        a: &CsrMatrix,
        rhs: &[f64],
        x0: &[f64],
        partition: &RowPartition,
        opts: &SolveOptions,
        run: LeasedRun<'_>,
    ) -> Result<FaultedSolve> {
        check_system(a, rhs, x0);
        assert_eq!(partition.n(), a.n_rows(), "partition must cover the system");
        let kernel = AsyncJacobiKernel::with_sweep(
            a,
            rhs,
            partition,
            self.local_iters,
            self.damping,
            self.local_sweep,
        )?;
        let shards = ShardPlan::even(kernel.n_blocks(), run.lease.n());
        let exec = PersistentExecutor::new(run.exec_opts);
        let mut schedule = self.schedule.build();
        let period = if opts.tol > 0.0 { opts.check_every.max(1) } else { 0 };
        let mut monitor = ResidualMonitor::new(a, rhs, opts.tol, period);
        let mut ws = PersistentWorkspace::new();
        let mut x = x0.to_vec();
        let (trace, report) = exec.run_session(
            &kernel,
            &mut x,
            opts.max_iters,
            schedule.as_mut(),
            &AllowAll,
            &mut monitor,
            &mut ws,
            RunSession {
                shards: Some(&shards),
                faults: run.faults,
                cancel: run.cancel,
                pool: Some((run.pool, run.lease)),
                ..RunSession::default()
            },
        );
        // Stopped runs report the monitor's stop watermark; interrupted
        // runs (cancel / deadline / stall) report the partial watermark.
        let iterations = match report.stopped_at {
            Some(at) => at,
            None if report.outcome == abr_gpu::RunOutcome::Completed => opts.max_iters,
            None => report.global_iterations,
        };
        let checks = std::mem::take(&mut monitor.checks);
        let mut rbuf = monitor.into_scratch();
        let final_residual = relative_residual_with(&mut rbuf, a, rhs, &x);
        let converged = opts.tol > 0.0 && final_residual <= opts.tol;
        let result = SolveResult {
            x,
            iterations,
            converged,
            final_residual,
            history: Vec::new(),
            fault: Some(report.fault.clone()),
        };
        Ok(FaultedSolve { result, trace, report, checks })
    }
}

/// The pool half of a [`AsyncBlockSolver::solve_leased`] call: which
/// shared [`WorkerPool`] runs the solve, the admission-granted [`Lease`],
/// and the optional request-scoped cancellation and chaos plumbing.
pub struct LeasedRun<'a> {
    /// The shared worker pool the lease came from.
    pub pool: &'a WorkerPool,
    /// The admission-granted thread reservation; its size is the solve's
    /// worker count and shard count.
    pub lease: Lease<'a>,
    /// Request-scoped cancel/deadline token, polled by the monitor loop.
    pub cancel: Option<&'a CancelToken>,
    /// Chaos fault plan for this request (`--chaos` mode); `None` runs
    /// fault-free.
    pub faults: Option<&'a FaultPlan>,
    /// Executor tuning (lag gate, stall pacing, recovery knobs). The
    /// worker count is taken from the lease, not from here.
    pub exec_opts: PersistentOptions,
}

/// Everything a [`AsyncBlockSolver::solve_faulted`] run produces.
#[derive(Debug)]
pub struct FaultedSolve {
    /// The solve outcome; [`SolveResult::fault`] holds the
    /// [`abr_gpu::FaultReport`].
    pub result: SolveResult,
    /// The executor's update trace (staleness histogram, per-block
    /// counts, realised `max_skew` — bounded by
    /// `max_round_lag + 1 + max_outage_rounds`).
    pub trace: UpdateTrace,
    /// The raw executor report ([`RunOutcome`](abr_gpu::RunOutcome),
    /// stop watermark, steal/check counters, the fault report again).
    pub report: abr_gpu::PersistentReport,
    /// The concurrent monitor's `(global_iteration, relative_residual)`
    /// trajectory — the §4.5 / Figure 10 re-convergence curve.
    pub checks: Vec<(usize, f64)>,
}

/// Runs `rounds` asynchronous rounds purely to *measure* the realised
/// shift distribution of Eq. (3) — which neighbour versions each block
/// update actually read — without solving anything to tolerance. Returns
/// the execution trace with its staleness histogram filled in.
pub fn measure_staleness(
    a: &CsrMatrix,
    rhs: &[f64],
    partition: &RowPartition,
    local_iters: usize,
    sim_opts: SimOptions,
    schedule: ScheduleKind,
    rounds: usize,
) -> Result<abr_gpu::UpdateTrace> {
    let kernel = AsyncJacobiKernel::new(a, rhs, partition, local_iters, 1.0)?;
    let mut x = vec![0.0; a.n_rows()];
    let exec = SimExecutor::new(sim_opts);
    let mut sched = schedule.build();
    Ok(exec.run(&kernel, &mut x, rounds, sched.as_mut(), &AllowAll, |_, _| {}))
}

/// Round-offset adapters so chunked driving presents absolute global
/// iteration indices to the schedule and the fault filter.
struct OffsetFilter<'a> {
    inner: &'a dyn UpdateFilter,
    offset: usize,
}

impl UpdateFilter for OffsetFilter<'_> {
    fn block_enabled(&self, block: usize, round: usize) -> bool {
        self.inner.block_enabled(block, round + self.offset)
    }
    fn component_enabled(&self, i: usize, round: usize) -> bool {
        self.inner.component_enabled(i, round + self.offset)
    }
}

struct OffsetSchedule<'a> {
    inner: &'a mut dyn BlockSchedule,
    offset: usize,
}

impl BlockSchedule for OffsetSchedule<'_> {
    fn order(&mut self, round: usize, n_blocks: usize, out: &mut Vec<usize>) {
        self.inner.order(round + self.offset, n_blocks, out);
    }
}

/// The host-side concurrent convergence check of the persistent solve
/// path: every `period` global iterations it computes the relative
/// residual of the monitor's snapshot (through the reused scratch buffer
/// of [`relative_residual_with`]) and stops the workers once it reaches
/// `tol` — or once the iterate turns non-finite, the divergent regime the
/// chunked driver also bails out of.
pub struct ResidualMonitor<'a> {
    a: &'a CsrMatrix,
    rhs: &'a [f64],
    tol: f64,
    period: usize,
    scratch: Vec<f64>,
    /// `‖b‖₂`, cached at construction: the fused fast path normalises the
    /// workers' `‖b − A x‖²` estimate without touching the matrix.
    rhs_norm: f64,
    /// When set, every fused estimate escalates to the exact check — the
    /// pre-fusion monitor, kept as the benchmark baseline so the scale
    /// suite can price the fusion.
    exact_only: bool,
    /// Fused polls since the last exact check (forced-escalation clock).
    fused_streak: usize,
    /// Last exact check landed within [`URGENT_BAND`] of the tolerance:
    /// the executor's pacing floor is waived so the confirming poll is
    /// not delayed by the cost of the check that almost stopped.
    urgent: bool,
    /// `(global_iteration, relative_residual)` of the last check.
    pub last_check: Option<(usize, f64)>,
    /// Every check the monitor performed, in order — the concurrent
    /// residual trajectory of a persistent solve (what the `recovery`
    /// experiment's re-convergence curves are plotted from). One small
    /// push per `check_every` iterations, nothing per update.
    pub checks: Vec<(usize, f64)>,
}

/// Safety margin of [`ResidualMonitor`]'s fused fast path: escalate to
/// the exact check once the fused estimate is within this factor of the
/// tolerance. The estimate mixes per-block sub-norms published at
/// slightly different moments of the asynchronous iterate, so near the
/// stopping point it can sit a little above or below the exact residual
/// of any one snapshot; the band makes "skip the exact check" a decision
/// taken only far from convergence, where even a crude estimate cannot
/// be wrong about the *order of magnitude*.
pub const FUSED_GUARD_BAND: f64 = 8.0;

/// At most this many consecutive polls may be answered by the fused
/// estimate before [`ResidualMonitor`] forces an exact check anyway.
/// Polls are gated on watermark advance (at most one per `period`
/// global rounds), so this bounds detection lateness to about
/// `FUSED_FORCE_EXACT_EVERY × period` rounds even when the estimate is
/// stuck high — the sum is dominated by the *most-lagging* block's
/// last published sub-norm, which under heavy scheduling skew can sit
/// orders of magnitude above the live residual. It also keeps the
/// recorded trajectory coarsely sampled, and means a systematically
/// over-estimating kernel cannot starve the stopping test. Still an
/// 8× cut over the pre-fusion exact-check-per-period cost.
pub const FUSED_FORCE_EXACT_EVERY: usize = 8;

/// Endgame window of [`ResidualMonitor`]: an exact check whose relative
/// residual lands within this factor above the tolerance marks the run
/// [`urgent`](crate::ConvergenceMonitor::urgent) — a couple of rounds of
/// typical contraction away from stopping — and the executor then polls
/// at full pace instead of sleeping a multiple of the check's cost. A
/// converging run spends only its last few polls inside the window, so
/// the waiver buys prompt stop detection for a bounded number of extra
/// exact checks; a run that *stagnates* inside the window pays full
/// monitor cost, which is the regime where a tight watch is wanted
/// anyway.
pub const URGENT_BAND: f64 = 64.0;

impl<'a> ResidualMonitor<'a> {
    /// A monitor stopping at relative residual `tol`, checking every
    /// `period` global iterations (`0` never checks).
    pub fn new(a: &'a CsrMatrix, rhs: &'a [f64], tol: f64, period: usize) -> Self {
        ResidualMonitor {
            a,
            rhs,
            tol,
            period,
            scratch: Vec::new(),
            rhs_norm: rhs.iter().map(|&b| b * b).sum::<f64>().sqrt(),
            exact_only: false,
            fused_streak: 0,
            urgent: false,
            last_check: None,
            checks: Vec::new(),
        }
    }

    /// Disables the fused fast path: every poll escalates to the exact
    /// residual check, as before fusion existed. The scale bench runs
    /// this as its baseline; it is also the right mode when the recorded
    /// trajectory must have a point at every single period.
    pub fn exact_only(mut self) -> Self {
        self.exact_only = true;
        self
    }

    /// Consumes the monitor, handing back its residual scratch buffer so
    /// the caller's final residual computation reuses it too.
    pub fn into_scratch(self) -> Vec<f64> {
        self.scratch
    }
}

impl ConvergenceMonitor for ResidualMonitor<'_> {
    fn period(&self) -> usize {
        self.period
    }

    fn check(&mut self, global_iteration: usize, x: &[f64]) -> bool {
        self.fused_streak = 0;
        let rr = relative_residual_with(&mut self.scratch, self.a, self.rhs, x);
        self.urgent = rr.is_finite() && rr <= self.tol * URGENT_BAND;
        self.last_check = Some((global_iteration, rr));
        self.checks.push((global_iteration, rr));
        rr <= self.tol || !rr.is_finite()
    }

    fn fused_check(&mut self, _global_iteration: usize, estimate_sq: f64) -> bool {
        if self.exact_only || self.rhs_norm == 0.0 {
            return true;
        }
        if self.fused_streak + 1 >= FUSED_FORCE_EXACT_EVERY {
            return true;
        }
        let estimate = estimate_sq.sqrt() / self.rhs_norm;
        // Escalate on anything suspicious (non-finite estimate: the
        // divergent regime must reach the exact check, which stops on
        // it) or anywhere near the tolerance; skip only when the
        // estimate is comfortably far from converged.
        if !estimate.is_finite() || estimate <= self.tol * FUSED_GUARD_BAND {
            return true;
        }
        self.fused_streak += 1;
        false
    }

    fn urgent(&self) -> bool {
        self.urgent
    }
}

/// The block kernel realising Algorithm 1 (one thread block's work).
///
/// At construction the `(matrix, partition)` pair is compiled into a
/// [`BlockPlan`]: per block, a packed local operator with the diagonal
/// pre-extracted and pre-inverted (plus a branch-free ELL variant for
/// short-row blocks) and a packed halo segment. An update then is
///
/// 1. one linear gather over the halo to freeze the off-block part,
/// 2. `k` sweeps over the packed local operator,
///
/// and with [`BlockKernel::update_block_with`] it performs **zero heap
/// allocations** in steady state — the executors pass each worker's
/// reusable [`BlockScratch`]. The plan path is bit-identical to the
/// span-sliced reference kept in
/// [`update_block_reference`](Self::update_block_reference): entry order
/// within every row is preserved, so every floating-point accumulation
/// happens in the same order (the workspace proptests assert
/// bit-equality).
pub struct AsyncJacobiKernel<'a> {
    a: &'a CsrMatrix,
    rhs: &'a [f64],
    plan: BlockPlan,
    local_iters: usize,
    damping: f64,
    local_sweep: LocalSweep,
    /// Per row: the sub-range of the row's CSR entries whose columns fall
    /// inside the row's own block (columns are sorted, so it's one
    /// contiguous span). Used only by the reference path.
    local_span: Vec<(usize, usize)>,
    /// Testing/benchmarking hook: pin every block to one sweep tier
    /// instead of the plan's per-block selection (see
    /// [`force_tier`](Self::force_tier)).
    tier_override: Option<SweepTier>,
}

impl<'a> AsyncJacobiKernel<'a> {
    /// Builds the kernel with Jacobi local sweeps; fails on zero diagonal
    /// entries.
    pub fn new(
        a: &'a CsrMatrix,
        rhs: &'a [f64],
        partition: &RowPartition,
        local_iters: usize,
        damping: f64,
    ) -> Result<Self> {
        Self::with_sweep(a, rhs, partition, local_iters, damping, LocalSweep::Jacobi)
    }

    /// Builds the kernel with an explicit inner sweep type.
    pub fn with_sweep(
        a: &'a CsrMatrix,
        rhs: &'a [f64],
        partition: &RowPartition,
        local_iters: usize,
        damping: f64,
        local_sweep: LocalSweep,
    ) -> Result<Self> {
        Self::with_sweep_and_stencil(a, rhs, partition, local_iters, damping, local_sweep, None)
    }

    /// Builds the kernel with an optional [`StencilDescriptor`] enabling
    /// the matrix-free sweep tier. The descriptor is verified against `a`
    /// during plan compilation; a mismatch is an error, never a silent
    /// fallback.
    pub fn with_sweep_and_stencil(
        a: &'a CsrMatrix,
        rhs: &'a [f64],
        partition: &RowPartition,
        local_iters: usize,
        damping: f64,
        local_sweep: LocalSweep,
        descriptor: Option<&StencilDescriptor>,
    ) -> Result<Self> {
        let plan = BlockPlan::compile_with_stencil(a, partition, descriptor)?;
        let n = a.n_rows();
        let mut local_span = Vec::with_capacity(n);
        for r in 0..n {
            let block = partition.block(partition.block_of(r));
            let (cols, _) = a.row(r);
            let lo = cols.partition_point(|&c| c < block.start);
            let hi = cols.partition_point(|&c| c < block.end);
            local_span.push((lo, hi));
        }
        Ok(AsyncJacobiKernel {
            a,
            rhs,
            plan,
            local_iters,
            damping,
            local_sweep,
            local_span,
            tier_override: None,
        })
    }

    /// The compiled block plan.
    pub fn plan(&self) -> &BlockPlan {
        &self.plan
    }

    /// Pins every Jacobi block update to `tier` instead of the plan's
    /// per-block selection — the hook the equivalence proptests and the
    /// bench variants use to compare tiers on identical inputs. A tier a
    /// block has no compiled data for (ELL on a wide block, stencil
    /// without a descriptor) falls back to that block's compiled tier;
    /// `None` restores normal dispatch. Gauss-Seidel sweeps ignore this
    /// (GS is row-sequential and always walks the packed CSR).
    pub fn force_tier(&mut self, tier: Option<SweepTier>) {
        self.tier_override = tier;
    }

    /// The tier block `b`'s Jacobi update will actually dispatch to,
    /// after applying any [`force_tier`](Self::force_tier) override.
    pub fn resolved_tier(&self, b: usize) -> SweepTier {
        let compiled = self.plan.tier(b);
        match self.tier_override {
            None => compiled,
            Some(t) => {
                let supported = match t {
                    SweepTier::Csr => true,
                    SweepTier::Ell | SweepTier::EllSimd => self.plan.ell(b).is_some(),
                    SweepTier::Stencil => self.plan.stencil_block(b).is_some(),
                };
                if supported {
                    t
                } else {
                    compiled
                }
            }
        }
    }

    /// Number of nonzeros lying inside the partition's diagonal blocks —
    /// the `nnz_local` input of the timing model.
    pub fn nnz_local(&self) -> usize {
        self.plan.nnz_local()
    }

    /// The original span-sliced implementation of one block update,
    /// kept as the reference the plan path is tested (bit-for-bit) and
    /// benchmarked against. Allocates its working buffers per call.
    pub fn update_block_reference(&self, b: usize, x: &XView<'_>, out: &mut [f64]) {
        let (start, end) = self.plan.block_rows(b);
        let nb = end - start;
        debug_assert_eq!(out.len(), nb);
        let inv_diag = self.plan.inv_diag();

        // Step 1+2: snapshot local values, freeze the off-block part.
        let mut cur: Vec<f64> = (start..end).map(|i| x.get(i)).collect();
        let mut frozen = vec![0.0f64; nb];
        for (li, r) in (start..end).enumerate() {
            let (cols, vals) = self.a.row(r);
            let (lo, hi) = self.local_span[r];
            let mut acc = self.rhs[r];
            for k in 0..lo {
                acc -= vals[k] * x.get(cols[k]);
            }
            for k in hi..cols.len() {
                acc -= vals[k] * x.get(cols[k]);
            }
            frozen[li] = acc;
        }

        // Step 3: `local_iters` sweeps on the subdomain.
        match self.local_sweep {
            LocalSweep::Jacobi => {
                let mut next = vec![0.0f64; nb];
                for _ in 0..self.local_iters {
                    for (li, r) in (start..end).enumerate() {
                        let (cols, vals) = self.a.row(r);
                        let (lo, hi) = self.local_span[r];
                        let mut acc = frozen[li];
                        for k in lo..hi {
                            let c = cols[k];
                            if c != r {
                                acc -= vals[k] * cur[c - start];
                            }
                        }
                        let sweep = acc * inv_diag[r];
                        next[li] = if self.damping == 1.0 {
                            sweep
                        } else {
                            cur[li] + self.damping * (sweep - cur[li])
                        };
                    }
                    std::mem::swap(&mut cur, &mut next);
                }
            }
            LocalSweep::GaussSeidel => {
                for _ in 0..self.local_iters {
                    for (li, r) in (start..end).enumerate() {
                        let (cols, vals) = self.a.row(r);
                        let (lo, hi) = self.local_span[r];
                        let mut acc = frozen[li];
                        for k in lo..hi {
                            let c = cols[k];
                            if c != r {
                                acc -= vals[k] * cur[c - start];
                            }
                        }
                        let sweep = acc * inv_diag[r];
                        cur[li] = if self.damping == 1.0 {
                            sweep
                        } else {
                            cur[li] + self.damping * (sweep - cur[li])
                        };
                    }
                }
            }
        }
        out.copy_from_slice(&cur);
    }

    /// `k` Jacobi sweeps over the ELL-packed local operator. Branch-free
    /// inner loop: padding entries multiply the guaranteed-zero pad slot
    /// `cur[nb]`, contributing an exact `- 0.0` to the accumulator.
    /// Damping is monomorphised out of the loop via `DAMPED`.
    #[inline]
    fn sweeps_jacobi_ell<const DAMPED: bool>(
        &self,
        ell: &BlockEll,
        inv_diag: &[f64],
        frozen: &[f64],
        cur: &mut Vec<f64>,
        next: &mut Vec<f64>,
    ) {
        let nb = ell.rows();
        let width = ell.width();
        let cols = ell.cols();
        let vals = ell.vals();
        for _ in 0..self.local_iters {
            for li in 0..nb {
                let mut acc = frozen[li];
                // column-major walk: k-th entry of row li at k*nb + li,
                // ascending k = source CSR order within the row
                for k in 0..width {
                    let idx = k * nb + li;
                    acc -= vals[idx] * cur[cols[idx] as usize];
                }
                let sweep = acc * inv_diag[li];
                next[li] =
                    if DAMPED { cur[li] + self.damping * (sweep - cur[li]) } else { sweep };
            }
            std::mem::swap(cur, next);
        }
    }

    /// `k` Jacobi sweeps over the ELL-packed local operator, four rows
    /// per [`f64x4`] iteration — one row per lane, so every lane runs the
    /// scalar tier's op sequence (`acc -= v * cur[c]`, two roundings; no
    /// FMA contraction) and the result is **bit-identical** to
    /// [`sweeps_jacobi_ell`](Self::sweeps_jacobi_ell). The ELL pad-slot
    /// invariant is what makes the k-loop branch-free: padding lanes
    /// multiply `0.0` by the guaranteed-zero `cur[nb]`, for every input
    /// including non-finite iterates. Rows `nb % 4` run the scalar
    /// epilogue verbatim.
    #[inline]
    fn sweeps_jacobi_ell_simd<const DAMPED: bool>(
        &self,
        ell: &BlockEll,
        inv_diag: &[f64],
        frozen: &[f64],
        cur: &mut Vec<f64>,
        next: &mut Vec<f64>,
    ) {
        let nb = ell.rows();
        let width = ell.width();
        let cols = ell.cols();
        let vals = ell.vals();
        let quads = nb - nb % LANES;
        let tau = f64x4::splat(self.damping);
        for _ in 0..self.local_iters {
            for li in (0..quads).step_by(LANES) {
                let mut acc = f64x4::load(&frozen[li..]);
                for k in 0..width {
                    let idx = k * nb + li;
                    // product then subtract: the scalar `acc -= v * cur[c]`
                    acc = acc - f64x4::load(&vals[idx..]) * f64x4::gather_u32(cur, &cols[idx..]);
                }
                let sweep = acc * f64x4::load(&inv_diag[li..]);
                let new = if DAMPED {
                    let cv = f64x4::load(&cur[li..]);
                    cv + tau * (sweep - cv)
                } else {
                    sweep
                };
                new.store(&mut next[li..]);
            }
            for li in quads..nb {
                let mut acc = frozen[li];
                for k in 0..width {
                    let idx = k * nb + li;
                    acc -= vals[idx] * cur[cols[idx] as usize];
                }
                let sweep = acc * inv_diag[li];
                next[li] =
                    if DAMPED { cur[li] + self.damping * (sweep - cur[li]) } else { sweep };
            }
            std::mem::swap(cur, next);
        }
    }

    /// `k` Jacobi sweeps over the matrix-free stencil runs: **zero index
    /// loads** — within a run, the neighbour of row `li` at tap offset
    /// `d` is `cur[li + d]`, a contiguous four-lane load. Taps are in
    /// ascending offset order (= source CSR column order) with
    /// coefficients bit-equal to the stored values (enforced by
    /// [`StencilDescriptor::verify`]), and each tap contributes the same
    /// product-then-subtract as the other tiers, so this path too is
    /// bit-identical to the packed-CSR sweep. Off-block taps are not in
    /// the runs — they were frozen through the packed halo in step 2.
    #[inline]
    fn sweeps_jacobi_stencil<const DAMPED: bool>(
        &self,
        sb: &StencilBlock,
        inv_diag: &[f64],
        frozen: &[f64],
        cur: &mut Vec<f64>,
        next: &mut Vec<f64>,
    ) {
        let tau = f64x4::splat(self.damping);
        for _ in 0..self.local_iters {
            for run in sb.runs() {
                let (lo, hi) = (run.lo as usize, run.hi as usize);
                let len = hi - lo;
                let quads = len - len % LANES;
                for q in (0..quads).step_by(LANES) {
                    let li = lo + q;
                    let mut acc = f64x4::load(&frozen[li..]);
                    for &(off, coef) in &run.taps {
                        // in-block tap: 0 <= li + off, and (li+3) + off < nb
                        let j = (li as isize + off) as usize;
                        acc = acc - f64x4::splat(coef) * f64x4::load(&cur[j..]);
                    }
                    let sweep = acc * f64x4::load(&inv_diag[li..]);
                    let new = if DAMPED {
                        let cv = f64x4::load(&cur[li..]);
                        cv + tau * (sweep - cv)
                    } else {
                        sweep
                    };
                    new.store(&mut next[li..]);
                }
                for li in lo + quads..hi {
                    let mut acc = frozen[li];
                    for &(off, coef) in &run.taps {
                        acc -= coef * cur[(li as isize + off) as usize];
                    }
                    let sweep = acc * inv_diag[li];
                    next[li] =
                        if DAMPED { cur[li] + self.damping * (sweep - cur[li]) } else { sweep };
                }
            }
            std::mem::swap(cur, next);
        }
    }

    /// `k` Jacobi sweeps over the packed local CSR (wide-row blocks).
    #[inline]
    fn sweeps_jacobi_csr<const DAMPED: bool>(
        &self,
        start: usize,
        nb: usize,
        inv_diag: &[f64],
        frozen: &[f64],
        cur: &mut Vec<f64>,
        next: &mut Vec<f64>,
    ) {
        for _ in 0..self.local_iters {
            for li in 0..nb {
                let (lc, lv) = self.plan.local_row(start + li);
                let mut acc = frozen[li];
                for (&c, &v) in lc.iter().zip(lv) {
                    acc -= v * cur[c as usize];
                }
                let sweep = acc * inv_diag[li];
                next[li] =
                    if DAMPED { cur[li] + self.damping * (sweep - cur[li]) } else { sweep };
            }
            std::mem::swap(cur, next);
        }
    }

    /// Exact residual sub-norm `Σ_i r_i²` of block `b`'s rows at the local
    /// iterate `cur`, with the off-block contribution frozen in `frozen` —
    /// one extra pass over the packed local operator. Used by the fused
    /// estimator when the sweep retains no previous iterate (Gauss-Seidel
    /// updates in place, and `damping == 0` makes the Jacobi delta
    /// degenerate).
    fn local_residual_sq_at(&self, b: usize, cur: &[f64], frozen: &[f64]) -> f64 {
        let (start, end) = self.plan.block_rows(b);
        let inv_diag = &self.plan.inv_diag()[start..end];
        let mut sum = 0.0;
        for li in 0..end - start {
            let (lc, lv) = self.plan.local_row(start + li);
            let mut acc = frozen[li];
            for (&c, &v) in lc.iter().zip(lv) {
                acc -= v * cur[c as usize];
            }
            // acc still carries the diagonal term: r_i = acc - a_ii * cur_i
            let r = acc - cur[li] / inv_diag[li];
            sum += r * r;
        }
        sum
    }

    /// `k` Gauss-Seidel sweeps over the packed local CSR. GS is
    /// row-sequential by definition (each row reads the rows above it
    /// from *this* sweep), so it always takes the CSR path.
    #[inline]
    fn sweeps_gs_csr<const DAMPED: bool>(
        &self,
        start: usize,
        nb: usize,
        inv_diag: &[f64],
        frozen: &[f64],
        cur: &mut [f64],
    ) {
        for _ in 0..self.local_iters {
            for li in 0..nb {
                let (lc, lv) = self.plan.local_row(start + li);
                let mut acc = frozen[li];
                for (&c, &v) in lc.iter().zip(lv) {
                    acc -= v * cur[c as usize];
                }
                let sweep = acc * inv_diag[li];
                cur[li] =
                    if DAMPED { cur[li] + self.damping * (sweep - cur[li]) } else { sweep };
            }
        }
    }
}

impl BlockKernel for AsyncJacobiKernel<'_> {
    fn n(&self) -> usize {
        self.plan.n()
    }

    fn n_blocks(&self) -> usize {
        self.plan.n_blocks()
    }

    fn block_range(&self, b: usize) -> (usize, usize) {
        self.plan.block_rows(b)
    }

    fn block_cost(&self, b: usize) -> f64 {
        self.plan.block_nnz(b).max(1.0)
    }

    fn neighbor_blocks(&self, b: usize) -> Option<&[usize]> {
        Some(self.plan.neighbors(b))
    }

    fn update_block(&self, b: usize, x: &XView<'_>, out: &mut [f64]) {
        // Compatibility entry point for callers without a scratch; the
        // executors call `update_block_with` with a per-worker scratch.
        let mut scratch = BlockScratch::new();
        self.update_block_with(b, x, out, &mut scratch);
    }

    fn update_block_with(
        &self,
        b: usize,
        x: &XView<'_>,
        out: &mut [f64],
        scratch: &mut BlockScratch,
    ) {
        let (start, end) = self.plan.block_rows(b);
        let nb = end - start;
        debug_assert_eq!(out.len(), nb);
        scratch.ensure(nb);
        let BlockScratch { cur, next, frozen } = scratch;

        // Step 1: snapshot local values; zero the pad slots so ELL
        // padding entries stay numerically inert.
        for (li, c) in cur[..nb].iter_mut().enumerate() {
            *c = x.get(start + li);
        }
        cur[nb] = 0.0;
        next[nb] = 0.0;

        // Step 2: freeze the off-block part — one linear gather per row
        // over the packed halo (source CSR order, so bit-identical to
        // the reference's two-span subtraction).
        for (li, f) in frozen.iter_mut().enumerate() {
            let (hc, hv) = self.plan.halo_row(start + li);
            let mut acc = self.rhs[start + li];
            for (&c, &v) in hc.iter().zip(hv) {
                acc -= v * x.get(c);
            }
            *f = acc;
        }

        // Step 3: `local_iters` sweeps on the packed local operator,
        // monomorphised over damping and layout.
        let inv_diag = &self.plan.inv_diag()[start..end];
        let damped = self.damping != 1.0;
        match self.local_sweep {
            LocalSweep::Jacobi => {
                // all four tiers share the freeze above and the op order
                // inside, so the dispatch is a pure speed choice — every
                // arm produces the same bits (asserted by the workspace
                // equivalence proptests)
                let ell = || self.plan.ell(b).expect("tier resolved against plan");
                let sten = || self.plan.stencil_block(b).expect("tier resolved against plan");
                match (self.resolved_tier(b), damped) {
                    (SweepTier::Stencil, false) => {
                        self.sweeps_jacobi_stencil::<false>(sten(), inv_diag, frozen, cur, next)
                    }
                    (SweepTier::Stencil, true) => {
                        self.sweeps_jacobi_stencil::<true>(sten(), inv_diag, frozen, cur, next)
                    }
                    (SweepTier::EllSimd, false) => {
                        self.sweeps_jacobi_ell_simd::<false>(ell(), inv_diag, frozen, cur, next)
                    }
                    (SweepTier::EllSimd, true) => {
                        self.sweeps_jacobi_ell_simd::<true>(ell(), inv_diag, frozen, cur, next)
                    }
                    (SweepTier::Ell, false) => {
                        self.sweeps_jacobi_ell::<false>(ell(), inv_diag, frozen, cur, next)
                    }
                    (SweepTier::Ell, true) => {
                        self.sweeps_jacobi_ell::<true>(ell(), inv_diag, frozen, cur, next)
                    }
                    (SweepTier::Csr, false) => {
                        self.sweeps_jacobi_csr::<false>(start, nb, inv_diag, frozen, cur, next)
                    }
                    (SweepTier::Csr, true) => {
                        self.sweeps_jacobi_csr::<true>(start, nb, inv_diag, frozen, cur, next)
                    }
                }
            }
            LocalSweep::GaussSeidel => {
                if damped {
                    self.sweeps_gs_csr::<true>(start, nb, inv_diag, frozen, cur);
                } else {
                    self.sweeps_gs_csr::<false>(start, nb, inv_diag, frozen, cur);
                }
            }
        }
        out.copy_from_slice(&cur[..nb]);
    }

    fn update_block_estimating(
        &self,
        b: usize,
        x: &XView<'_>,
        out: &mut [f64],
        scratch: &mut BlockScratch,
    ) -> Option<f64> {
        self.update_block_with(b, x, out, scratch);
        if self.local_iters == 0 {
            return None;
        }
        let (start, end) = self.plan.block_rows(b);
        let nb = end - start;
        let inv_diag = &self.plan.inv_diag()[start..end];
        match self.local_sweep {
            LocalSweep::Jacobi if self.damping != 0.0 => {
                // After the sweeps `cur` holds the committed local iterate
                // and `next` the previous inner iterate (the final
                // double-buffer swap), so the Jacobi update law yields the
                // row residuals of that previous iterate with no matrix
                // pass at all: new_i = prev_i + τ(sweep_i − prev_i) and
                // r_i(prev) = a_ii (sweep_i − prev_i), hence
                // r_i = (new_i − prev_i) / (τ · inv_diag_i). For k = 1
                // this is exactly the residual of the snapshot the update
                // read; for k > 1 it trails the committed iterate by one
                // inner sweep (the monitor's guard band covers that, and
                // convergence is only ever declared on the exact check).
                let cur = &scratch.cur[..nb];
                let prev = &scratch.next[..nb];
                let inv_tau = 1.0 / self.damping;
                let mut sum = 0.0;
                for li in 0..nb {
                    let r = (cur[li] - prev[li]) * inv_tau / inv_diag[li];
                    sum += r * r;
                }
                Some(sum)
            }
            _ => {
                // Gauss-Seidel updates in place and retains no previous
                // iterate: price one extra pass over the packed local
                // operator for the exact local residual at the committed
                // iterate (≤ 1/k of the sweep cost).
                Some(self.local_residual_sq_at(b, &scratch.cur[..nb], &scratch.frozen[..nb]))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::SolveOptions;
    use crate::{gauss_seidel, jacobi};
    use abr_sparse::gen::{laplacian_2d_5pt, random_diag_dominant};

    fn solve_setup(n_side: usize) -> (CsrMatrix, Vec<f64>, Vec<f64>) {
        let a = laplacian_2d_5pt(n_side);
        let n = n_side * n_side;
        let x_true = vec![1.0; n];
        let rhs = a.mul_vec(&x_true).unwrap();
        (a, rhs, x_true)
    }

    #[test]
    fn single_block_async_1_is_exactly_jacobi() {
        let (a, rhs, _) = solve_setup(6);
        let n = a.n_rows();
        let p = RowPartition::uniform(n, n).unwrap();
        let solver = AsyncBlockSolver {
            local_iters: 1,
            schedule: ScheduleKind::RoundRobin,
            executor: ExecutorKind::Sim(SimOptions { n_workers: 1, jitter: 0.0, seed: 0 }),
            damping: 1.0,
            local_sweep: LocalSweep::Jacobi,
        };
        let opts = SolveOptions::fixed_iterations(15);
        let r_async = solver.solve(&a, &rhs, &vec![0.0; n], &p, &opts).unwrap();
        let r_jacobi = jacobi(&a, &rhs, &vec![0.0; n], &opts).unwrap();
        for (x1, x2) in r_async.x.iter().zip(&r_jacobi.x) {
            assert!((x1 - x2).abs() < 1e-14, "{x1} vs {x2}");
        }
    }

    #[test]
    fn scalar_blocks_sequential_is_exactly_gauss_seidel() {
        // block size 1, one worker, no jitter, in-order dispatch: every
        // update immediately sees all earlier ones — Gauss-Seidel.
        let (a, rhs, _) = solve_setup(5);
        let n = a.n_rows();
        let p = RowPartition::uniform(n, 1).unwrap();
        let solver = AsyncBlockSolver {
            local_iters: 1,
            schedule: ScheduleKind::RoundRobin,
            executor: ExecutorKind::Sim(SimOptions { n_workers: 1, jitter: 0.0, seed: 0 }),
            damping: 1.0,
            local_sweep: LocalSweep::Jacobi,
        };
        let opts = SolveOptions::fixed_iterations(10);
        let r_async = solver.solve(&a, &rhs, &vec![0.0; n], &p, &opts).unwrap();
        let r_gs = gauss_seidel(&a, &rhs, &vec![0.0; n], &opts).unwrap();
        for (x1, x2) in r_async.x.iter().zip(&r_gs.x) {
            assert!((x1 - x2).abs() < 1e-13, "{x1} vs {x2}");
        }
    }

    #[test]
    fn async_5_converges_on_poisson() {
        let (a, rhs, x_true) = solve_setup(12);
        let n = a.n_rows();
        let p = RowPartition::uniform(n, 16).unwrap();
        let solver = AsyncBlockSolver::async_k(5);
        let r = solver
            .solve(&a, &rhs, &vec![0.0; n], &p, &SolveOptions::to_tolerance(1e-11, 4000))
            .unwrap();
        assert!(r.converged, "residual {}", r.final_residual);
        for (xi, ti) in r.x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn async_5_converges_faster_than_async_1_per_global_iteration() {
        // The paper's headline §4.3 result on diagonally-heavy systems.
        let (a, rhs, _) = solve_setup(14);
        let n = a.n_rows();
        let p = RowPartition::uniform(n, 28).unwrap();
        let opts = SolveOptions::fixed_iterations(200);
        let r1 = AsyncBlockSolver::async_k(1)
            .solve(&a, &rhs, &vec![0.0; n], &p, &opts)
            .unwrap();
        let r5 = AsyncBlockSolver::async_k(5)
            .solve(&a, &rhs, &vec![0.0; n], &p, &opts)
            .unwrap();
        assert!(
            r5.final_residual < r1.final_residual * 0.1,
            "async-5 {} vs async-1 {}",
            r5.final_residual,
            r1.final_residual
        );
    }

    #[test]
    fn local_iterations_are_useless_when_diagonal_blocks_are_diagonal() {
        // Paper §4.3 on Chem97ZtZ: "the local matrices for Chem97ZtZ are
        // diagonal and therefore it does not matter how many local
        // iterations would be performed." With a truly diagonal local
        // block, the first local sweep is a fixed point of the remaining
        // ones, so async-(5) produces *identical* iterates to async-(1).
        let a = abr_sparse::gen::chem_ztz(301, 0.7889).unwrap();
        let n = a.n_rows();
        let rhs = a.mul_vec(&vec![1.0; n]).unwrap();
        let p = RowPartition::uniform(n, 16).unwrap(); // 16 < coupling stride
        let opts = SolveOptions::fixed_iterations(30);
        let r1 = AsyncBlockSolver::async_k(1)
            .solve(&a, &rhs, &vec![0.0; n], &p, &opts)
            .unwrap();
        let r5 = AsyncBlockSolver::async_k(5)
            .solve(&a, &rhs, &vec![0.0; n], &p, &opts)
            .unwrap();
        assert!(
            (r5.final_residual - r1.final_residual).abs()
                <= 1e-12 * r1.final_residual.max(1e-300),
            "async-5 {} vs async-1 {}",
            r5.final_residual,
            r1.final_residual
        );
    }

    #[test]
    fn threaded_executor_reaches_same_accuracy() {
        let (a, rhs, _) = solve_setup(10);
        let n = a.n_rows();
        let p = RowPartition::uniform(n, 10).unwrap();
        let sim = AsyncBlockSolver::async_k(5);
        let thr = AsyncBlockSolver {
            executor: ExecutorKind::Threaded(ThreadedOptions::default()),
            ..AsyncBlockSolver::async_k(5)
        };
        let opts = SolveOptions::fixed_iterations(150);
        let r_sim = sim.solve(&a, &rhs, &vec![0.0; n], &p, &opts).unwrap();
        let r_thr = thr.solve(&a, &rhs, &vec![0.0; n], &p, &opts).unwrap();
        // Non-deterministic, but both must be deep in the convergent
        // regime after 150 global iterations.
        assert!(r_sim.final_residual < 1e-2, "sim residual {}", r_sim.final_residual);
        // The threaded run is at least as accurate in practice: real
        // threads on a tiny system serialise on memory and see fresher
        // values than the DES's deliberately pessimistic staleness, so we
        // only bound it from above.
        assert!(r_thr.final_residual < 1e-2, "threaded residual {}", r_thr.final_residual);
    }

    #[test]
    fn history_records_every_global_iteration() {
        let (a, rhs, _) = solve_setup(8);
        let n = a.n_rows();
        let p = RowPartition::uniform(n, 16).unwrap();
        let r = AsyncBlockSolver::async_k(2)
            .solve(&a, &rhs, &vec![0.0; n], &p, &SolveOptions::fixed_iterations(25))
            .unwrap();
        assert_eq!(r.history.len(), 25);
        assert!(r.history[24] < r.history[0]);
    }

    #[test]
    fn tolerance_early_stop() {
        let (a, rhs, _) = solve_setup(8);
        let n = a.n_rows();
        let p = RowPartition::uniform(n, 16).unwrap();
        let r = AsyncBlockSolver::async_k(5)
            .solve(&a, &rhs, &vec![0.0; n], &p, &SolveOptions::to_tolerance(1e-8, 100000))
            .unwrap();
        assert!(r.converged);
        assert!(r.iterations < 100000);
        assert!(r.iterations.is_multiple_of(10), "chunked driving stops on a chunk boundary");
    }

    #[test]
    fn random_diag_dominant_systems_converge_for_any_seedled_schedule() {
        for seed in 0..3 {
            let a = random_diag_dominant(80, 5, 1.3, seed);
            let rhs = a.mul_vec(&vec![1.0; 80]).unwrap();
            let p = RowPartition::uniform(80, 9).unwrap();
            let solver = AsyncBlockSolver {
                schedule: ScheduleKind::Random { seed: seed * 13 },
                ..AsyncBlockSolver::async_k(2)
            };
            let r = solver
                .solve(&a, &rhs, &vec![0.0; 80], &p, &SolveOptions::to_tolerance(1e-9, 2000))
                .unwrap();
            assert!(r.converged, "seed {seed}: {}", r.final_residual);
        }
    }

    #[test]
    fn local_gauss_seidel_sweeps_converge_faster_per_global_iteration() {
        let (a, rhs, _) = solve_setup(12);
        let n = a.n_rows();
        let p = RowPartition::uniform(n, 36).unwrap();
        let opts = SolveOptions::fixed_iterations(80);
        let jac = AsyncBlockSolver::async_k(5)
            .solve(&a, &rhs, &vec![0.0; n], &p, &opts)
            .unwrap();
        let gs = AsyncBlockSolver {
            local_sweep: LocalSweep::GaussSeidel,
            ..AsyncBlockSolver::async_k(5)
        }
        .solve(&a, &rhs, &vec![0.0; n], &p, &opts)
        .unwrap();
        assert!(
            gs.final_residual < jac.final_residual,
            "local GS {} vs local Jacobi {}",
            gs.final_residual,
            jac.final_residual
        );
    }

    #[test]
    fn local_gs_with_scalar_blocks_equals_local_jacobi() {
        // one row per block: the inner sweep degenerates either way
        let (a, rhs, _) = solve_setup(5);
        let n = a.n_rows();
        let p = RowPartition::uniform(n, 1).unwrap();
        let opts = SolveOptions::fixed_iterations(10);
        let jac = AsyncBlockSolver { local_iters: 1, ..Default::default() }
            .solve(&a, &rhs, &vec![0.0; n], &p, &opts)
            .unwrap();
        let gs = AsyncBlockSolver {
            local_iters: 1,
            local_sweep: LocalSweep::GaussSeidel,
            ..Default::default()
        }
        .solve(&a, &rhs, &vec![0.0; n], &p, &opts)
        .unwrap();
        for (x1, x2) in jac.x.iter().zip(&gs.x) {
            assert!((x1 - x2).abs() < 1e-14);
        }
    }

    #[test]
    fn staleness_is_bounded_and_mixed() {
        let (a, rhs, _) = solve_setup(12);
        let n = a.n_rows();
        let p = RowPartition::uniform(n, 12).unwrap();
        let trace = measure_staleness(
            &a,
            &rhs,
            &p,
            2,
            SimOptions { n_workers: 4, jitter: 0.3, seed: 5 },
            ScheduleKind::Random { seed: 2 },
            40,
        )
        .unwrap();
        let h = &trace.staleness;
        assert!(h.total() > 0, "neighbour reads must be recorded");
        // Admissibility: shifts bounded (the serialised per-block updates
        // keep the skew to a few rounds).
        assert!(h.max_shift().unwrap() <= 6, "max shift {:?}", h.max_shift());
        // Asynchrony: a real mix of fresh and stale reads.
        assert!(h.fraction_fresh() > 0.05, "fresh fraction {}", h.fraction_fresh());
        assert!(h.fraction_fresh() < 0.95, "fresh fraction {}", h.fraction_fresh());
    }

    #[test]
    fn kernel_neighbors_are_the_coupled_blocks() {
        // 4x4 grid, blocks = grid rows: each block couples only to the
        // adjacent grid rows.
        let a = laplacian_2d_5pt(4);
        let p = RowPartition::uniform(16, 4).unwrap();
        let rhs = vec![0.0; 16];
        let k = AsyncJacobiKernel::new(&a, &rhs, &p, 1, 1.0).unwrap();
        assert_eq!(k.neighbor_blocks(0).unwrap(), &[1]);
        assert_eq!(k.neighbor_blocks(1).unwrap(), &[0, 2]);
        assert_eq!(k.neighbor_blocks(3).unwrap(), &[2]);
    }

    #[test]
    fn plan_path_is_bit_identical_to_reference() {
        // both layouts (ELL for the short-row Laplacian blocks, CSR for
        // the single wide block), both sweeps, damped and undamped
        let a = random_diag_dominant(60, 5, 1.4, 7);
        let rhs = a.mul_vec(&vec![1.0; 60]).unwrap();
        let x: Vec<f64> = (0..60).map(|i| (i as f64 * 0.37).sin()).collect();
        for (block_size, sweep, damping) in [
            (7, LocalSweep::Jacobi, 1.0),
            (7, LocalSweep::Jacobi, 0.8),
            (60, LocalSweep::Jacobi, 1.0),
            (7, LocalSweep::GaussSeidel, 1.0),
            (7, LocalSweep::GaussSeidel, 0.9),
        ] {
            let p = RowPartition::uniform(60, block_size).unwrap();
            let k = AsyncJacobiKernel::with_sweep(&a, &rhs, &p, 3, damping, sweep).unwrap();
            let mut scratch = abr_gpu::BlockScratch::new();
            for b in 0..k.n_blocks() {
                let (s, e) = k.block_range(b);
                let mut plan_out = vec![0.0; e - s];
                let mut ref_out = vec![0.0; e - s];
                k.update_block_with(b, &XView::Plain(&x), &mut plan_out, &mut scratch);
                k.update_block_reference(b, &XView::Plain(&x), &mut ref_out);
                for (pv, rv) in plan_out.iter().zip(&ref_out) {
                    assert_eq!(pv.to_bits(), rv.to_bits(), "block {b} ({sweep:?}, tau={damping})");
                }
            }
        }
    }

    #[test]
    fn ell_pad_slot_is_inert_for_nonfinite_iterates() {
        // divergent-regime values (inf) must flow through the ELL path
        // exactly as through the reference path
        let a = laplacian_2d_5pt(4);
        let rhs = vec![1.0; 16];
        let p = RowPartition::uniform(16, 4).unwrap();
        let k = AsyncJacobiKernel::new(&a, &rhs, &p, 2, 1.0).unwrap();
        let mut x = vec![1.0e308; 16];
        x[3] = f64::INFINITY;
        x[7] = -0.0;
        let mut scratch = abr_gpu::BlockScratch::new();
        for b in 0..k.n_blocks() {
            assert!(k.plan().ell(b).is_some());
            let mut plan_out = vec![0.0; 4];
            let mut ref_out = vec![0.0; 4];
            k.update_block_with(b, &XView::Plain(&x), &mut plan_out, &mut scratch);
            k.update_block_reference(b, &XView::Plain(&x), &mut ref_out);
            for (pv, rv) in plan_out.iter().zip(&ref_out) {
                assert_eq!(pv.to_bits(), rv.to_bits(), "block {b}");
            }
        }
    }

    #[test]
    fn solve_with_kernel_reuses_a_compiled_kernel() {
        let (a, rhs, _) = solve_setup(8);
        let n = a.n_rows();
        let p = RowPartition::uniform(n, 16).unwrap();
        let solver = AsyncBlockSolver::async_k(5);
        let kernel =
            AsyncJacobiKernel::with_sweep(&a, &rhs, &p, 5, 1.0, LocalSweep::Jacobi).unwrap();
        let opts = SolveOptions::fixed_iterations(40);
        let via_kernel = solver
            .solve_with_kernel(&a, &rhs, &vec![0.0; n], &kernel, &opts, &AllowAll)
            .unwrap();
        let direct = solver.solve(&a, &rhs, &vec![0.0; n], &p, &opts).unwrap();
        assert_eq!(via_kernel.x, direct.x);
    }

    #[test]
    fn nnz_local_counts_block_entries() {
        let a = laplacian_2d_5pt(4); // 16 rows
        let p = RowPartition::uniform(16, 4).unwrap();
        let rhs = vec![0.0; 16];
        let k = AsyncJacobiKernel::new(&a, &rhs, &p, 1, 1.0).unwrap();
        // Row-major 4x4 grid, blocks = grid rows: inside a block are the
        // diagonal and the left/right couplings: 16 + 2*3*4 = 40.
        assert_eq!(k.nnz_local(), 40);
        assert!(k.nnz_local() < a.nnz());
    }

    #[test]
    fn forced_tiers_agree_bitwise_per_block() {
        // every Jacobi tier — CSR, scalar ELL, f64x4 ELL, matrix-free
        // stencil — on identical inputs, compared bit for bit; blocks of
        // 14 rows start mid-grid-row so the stencil runs get clipped taps
        let a = laplacian_2d_5pt(9);
        let n = 81;
        let rhs = a.mul_vec(&vec![1.0; n]).unwrap();
        let p = RowPartition::uniform(n, 14).unwrap();
        let d = StencilDescriptor::poisson_2d_5pt(9);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 3.0 - 0.5).collect();
        for damping in [1.0, 0.85] {
            let mut k = AsyncJacobiKernel::with_sweep_and_stencil(
                &a, &rhs, &p, 4, damping, LocalSweep::Jacobi, Some(&d),
            )
            .unwrap();
            let mut base: Vec<Vec<f64>> = Vec::new();
            for tier in [
                None,
                Some(SweepTier::Csr),
                Some(SweepTier::Ell),
                Some(SweepTier::EllSimd),
                Some(SweepTier::Stencil),
            ] {
                k.force_tier(tier);
                let mut scratch = BlockScratch::new();
                let mut outs = Vec::new();
                for b in 0..k.n_blocks() {
                    if let Some(t) = tier {
                        assert_eq!(k.resolved_tier(b), t, "every tier has data on this system");
                    }
                    let (s, e) = k.block_range(b);
                    let mut out = vec![0.0; e - s];
                    k.update_block_with(b, &XView::Plain(&x), &mut out, &mut scratch);
                    outs.push(out);
                }
                if base.is_empty() {
                    base = outs;
                } else {
                    for (b, (o, r)) in outs.iter().zip(&base).enumerate() {
                        for (li, (v1, v2)) in o.iter().zip(r).enumerate() {
                            assert_eq!(
                                v1.to_bits(),
                                v2.to_bits(),
                                "tier {tier:?} block {b} row {li} tau {damping}: {v1} vs {v2}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn incompatible_tier_override_falls_back_to_compiled() {
        // no descriptor compiled: a Stencil override must quietly resolve
        // to each block's own tier instead of panicking
        let a = random_diag_dominant(40, 5, 1.4, 2);
        let rhs = vec![1.0; 40];
        let p = RowPartition::uniform(40, 8).unwrap();
        let mut k = AsyncJacobiKernel::new(&a, &rhs, &p, 2, 1.0).unwrap();
        k.force_tier(Some(SweepTier::Stencil));
        let x = vec![0.5; 40];
        let mut scratch = BlockScratch::new();
        let mut out = vec![0.0; 8];
        for b in 0..k.n_blocks() {
            assert_ne!(k.resolved_tier(b), SweepTier::Stencil);
            k.update_block_with(b, &XView::Plain(&x), &mut out, &mut scratch);
        }
    }

    #[test]
    fn stencil_solve_matches_plain_solve_bitwise() {
        // the deterministic Sim executor end to end: enabling the
        // matrix-free tier must not change one bit of any iterate
        let (a, rhs, x_true) = solve_setup(10);
        let n = a.n_rows();
        let d = StencilDescriptor::poisson_2d_5pt(10);
        let p = RowPartition::uniform(n, 20).unwrap();
        let solver = AsyncBlockSolver::async_k(5);
        let opts = SolveOptions::to_tolerance(1e-11, 4000);
        let plain = solver.solve(&a, &rhs, &vec![0.0; n], &p, &opts).unwrap();
        let sten = solver.solve_with_stencil(&a, &rhs, &vec![0.0; n], &p, &d, &opts).unwrap();
        assert!(sten.converged, "residual {}", sten.final_residual);
        assert_eq!(plain.iterations, sten.iterations);
        for ((x1, x2), t) in plain.x.iter().zip(&sten.x).zip(&x_true) {
            assert_eq!(x1.to_bits(), x2.to_bits(), "{x1} vs {x2}");
            assert!((x2 - t).abs() < 1e-8);
        }
    }
}
