#![warn(missing_docs)]

//! # abr-core
//!
//! The paper's contribution: relaxation solvers for sparse linear systems
//! `A x = b`, synchronous and (block-)asynchronous.
//!
//! * Synchronous baselines: [`jacobi()`], [`gauss_seidel()`] (plus
//!   backward/symmetric/red-black/multi-colour variants), [`sor()`],
//!   barrier-synchronised [`block_jacobi()`], and the Krylov baselines
//!   [`cg`], [`pcg()`], [`gmres()`], [`bicgstab()`], [`chebyshev`].
//! * The abstract chaotic iteration of Chazan–Miranker with pluggable
//!   update and shift functions: [`chazan`] — used to property-test the
//!   `rho(|B|) < 1` convergence theorem the paper relies on.
//! * **async-(k)** — the block-asynchronous method of the paper
//!   (Algorithm 1 / Eq. 4): [`async_block`], running on either of the
//!   `abr-gpu` executors.
//! * The tau-damped variants for SPD systems with `rho(B) > 1`:
//!   [`scaled`] (paper §4.2's remedy for `s1rmt3m1`).
//! * Extensions the paper lists as future work (§5): relaxation methods
//!   as [`smoother`]s inside an aggregation-based [`multigrid`].

pub mod async_block;
pub mod bicgstab;
pub mod block_jacobi;
pub mod cg;
pub mod chazan;
pub mod chebyshev;
pub mod convergence;
pub mod fingerprint;
pub mod gauss_seidel;
pub mod gmres;
pub mod jacobi;
pub mod ilu;
pub mod multigrid;
pub mod pcg;
pub mod scaled;
pub mod smoother;
pub mod sor;

pub use async_block::{
    AsyncBlockSolver, ExecutorKind, FaultedSolve, LeasedRun, LocalSweep, ResidualMonitor,
    ScheduleKind, FUSED_FORCE_EXACT_EVERY, FUSED_GUARD_BAND, URGENT_BAND,
};
pub use fingerprint::{fingerprint_matrix, fingerprint_vec, Fnv1a};
pub use bicgstab::bicgstab;
pub use block_jacobi::block_jacobi;
pub use cg::conjugate_gradient;
pub use gmres::gmres;
pub use pcg::pcg;
pub use convergence::{SolveOptions, SolveResult};
pub use gauss_seidel::{
    gauss_seidel, gauss_seidel_backward, gauss_seidel_multicolor, gauss_seidel_red_black,
    gauss_seidel_symmetric,
};
pub use jacobi::jacobi;
pub use sor::sor;
