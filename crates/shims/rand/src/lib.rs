//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of `rand 0.8`'s API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] over
//! integer and float ranges, and [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64 — not the ChaCha12 of the real `StdRng`, so streams differ
//! from upstream `rand`, but every consumer in this workspace treats the
//! seed as an opaque reproducibility token, never as a cross-library
//! contract. Determinism (same seed, same stream, on every platform) is
//! the property the experiments rely on, and it holds.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds (the subset used: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (`f64` in
    /// `[0, 1)`, raw `u64`, `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`Range` and `RangeInclusive` over
    /// the integer and float types the workspace uses).
    fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable without parameters (the `Standard` distribution).
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer draw from `[0, n)` via 128-bit multiply-shift
/// (Lemire's method, with the rejection step for exactness).
fn bounded_u64<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo >= n || lo >= (u64::MAX - n + 1) % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl UniformRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32);

impl UniformRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Fast, passes BigCrush, fully deterministic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers (the subset used: `shuffle`).
pub mod seq {
    use super::{bounded_u64, RngCore};

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// `rand::prelude`-alike for convenience.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = rng.gen_range(5usize..17);
            assert!((5..17).contains(&u));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([1u8, 2, 3].choose(&mut rng).is_some());
    }
}
