//! Offline stand-in for the `parking_lot` crate: a [`Mutex`] with
//! `parking_lot`'s ergonomics (no `Result` from `lock`, `into_inner`
//! without unwrapping), implemented over `std::sync::Mutex`.
//!
//! Lock poisoning is translated to `parking_lot` semantics — a panicked
//! holder does not poison the lock for later users; the inner data is
//! recovered as-is.

use std::sync::{Mutex as StdMutex, MutexGuard};

/// A mutual-exclusion primitive mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Acquires the lock, blocking until available. Unlike `std`, never
    /// returns an error: a poisoned lock is recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5, "parking_lot semantics: no poisoning");
    }

    #[test]
    fn concurrent_increments() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
