//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of proptest this workspace's property tests use: the
//! [`proptest!`] macro over `param in range` strategies (integer and float
//! `Range`/`RangeInclusive`), `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * cases are drawn from a seeded deterministic RNG (derived from the
//!   test's module path and case index), so failures reproduce exactly —
//!   there is no persistence file;
//! * there is no shrinking: a failing case reports its inputs verbatim;
//! * `prop_assert!` panics (like `assert!`) instead of returning `Err` —
//!   equivalent observable behaviour for `#[test]` functions.

/// Strategies: how a `param in <expr>` right-hand side produces values.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values for one test parameter.
    pub trait Strategy {
        /// The produced value type.
        type Value;
        /// Draws one value.
        fn pick(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u64, u32, i64, i32);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn pick(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn pick(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }
}

/// Config and the deterministic case RNG.
pub mod test_runner {
    /// Runner configuration (the subset used: the case count).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-case RNG (SplitMix64 keyed by test name + case).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the named test: same inputs, same draws,
        /// every run and platform.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h ^ ((case as u64) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) }
        }

        /// Next raw 64-bit word (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Unbiased draw from `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (n as u128);
                let lo = m as u64;
                if lo >= n || lo >= (u64::MAX - n + 1) % n {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(param in strategy, ...)` block
/// becomes a `#[test]` running `config.cases` seeded random cases. On a
/// panic inside the body, the failing inputs are printed and the panic is
/// propagated.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $( $(#[$meta:meta])* fn $name:ident ( $($p:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $p = $crate::strategy::Strategy::pick(&($strat), &mut __rng);)*
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let ::std::result::Result::Err(__err) = __outcome {
                        eprintln!(
                            "proptest: {} failed at case {}/{} with inputs:",
                            stringify!($name),
                            __case,
                            __config.cases,
                        );
                        $(eprintln!("    {} = {:?}", stringify!($p), $p);)*
                        ::std::panic::resume_unwind(__err);
                    }
                }
            }
        )*
    };
}

/// `assert!` under proptest's name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Sanity: parameters land in their declared ranges.
        #[test]
        fn ranges_respected(
            a in 3usize..9,
            b in 0u64..1000,
            f in -2.0f64..2.0,
            k in 1usize..=4,
        ) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b < 1000);
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!((1..=4).contains(&k));
        }
    }

    proptest! {
        /// Default config path also compiles and runs.
        #[test]
        fn default_config_runs(x in 0usize..5) {
            prop_assert!(x < 5);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x + 1, x);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let draw = |case| {
            let mut rng = TestRng::for_case("demo", case);
            (0usize..100).pick(&mut rng)
        };
        assert_eq!(draw(3), draw(3));
        // different cases explore different values somewhere in 0..20
        assert!((0..20).any(|c| draw(c) != draw(0)));
    }
}
