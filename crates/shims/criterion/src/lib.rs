//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro/API subset the workspace's benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::bench_function`],
//! benchmark groups with `sample_size`/`throughput`, [`BenchmarkId`], and
//! [`Bencher::iter`] — over a plain wall-clock measurement loop:
//! per benchmark, a warm-up phase followed by `sample_size` timed samples,
//! reporting the per-iteration mean of the fastest third (a robust
//! location estimate against OS scheduling noise).
//!
//! Results are printed as aligned text and, when `CRITERION_JSON` names a
//! file, appended there as JSON lines for machine consumption.
//!
//! Environment knobs: `CRITERION_SAMPLE_MS` (per-sample budget in
//! milliseconds, default 20), `CRITERION_SAMPLES` (overrides every
//! benchmark's sample count — the smoke-test hook that drives each bench
//! for a single sample), `CRITERION_JSON` (JSON-lines output path).

pub use std::hint::black_box;
use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Throughput annotation (recorded; reported as elements/second).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name and/or parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_budget: Duration,
    samples: usize,
    /// Mean ns/iter of the fastest-third samples, filled by `iter`.
    result_ns: f64,
    total_iters: u64,
}

impl Bencher {
    /// Measures `f` and records the per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one sample's budget, also calibrates batch size.
        let warm_start = Instant::now();
        let mut batch: u64 = 0;
        while warm_start.elapsed() < self.sample_budget {
            black_box(f());
            batch += 1;
        }
        let batch = batch.max(1);

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        let mut total_iters = batch; // warm-up iterations count as work done
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            total_iters += batch;
            per_iter.push(dt.as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let third = (per_iter.len() / 3).max(1);
        self.result_ns = per_iter[..third].iter().sum::<f64>() / third as f64;
        self.total_iters = total_iters;
    }
}

fn sample_budget() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(20);
    Duration::from_millis(ms.max(1))
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(
    full_name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    meta: &[(String, f64)],
    f: &mut dyn FnMut(&mut Bencher),
) {
    // CRITERION_SAMPLES overrides every bench's own sample count and may
    // go below the usual floor of 3 — the bench smoke test runs each
    // harness for one sample under `cargo test`.
    let samples = std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|v| v.max(1))
        .unwrap_or_else(|| samples.max(3));
    let mut bencher = Bencher {
        sample_budget: sample_budget(),
        samples,
        result_ns: f64::NAN,
        total_iters: 0,
    };
    f(&mut bencher);
    let ns = bencher.result_ns;
    let mut line = format!("{full_name:<48} time: {:>12}/iter", format_time(ns));
    if let Some(Throughput::Elements(e)) = throughput {
        let rate = e as f64 / (ns * 1e-9);
        line.push_str(&format!("   thrpt: {:.3} Melem/s", rate / 1e6));
    }
    if let Some(Throughput::Bytes(b)) = throughput {
        let rate = b as f64 / (ns * 1e-9);
        line.push_str(&format!("   thrpt: {:.3} MiB/s", rate / (1024.0 * 1024.0)));
    }
    println!("{line}");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) =
            std::fs::OpenOptions::new().create(true).append(true).open(path)
        {
            let mut extra = String::new();
            for (key, value) in meta {
                extra.push_str(&format!(", \"{}\": {}", key.replace('"', "'"), value));
            }
            let _ = writeln!(
                file,
                "{{\"bench\": \"{}\", \"mean_ns\": {}, \"samples\": {}, \"iters\": {}{}}}",
                full_name.replace('"', "'"),
                ns,
                bencher.samples,
                bencher.total_iters,
                extra,
            );
        }
    }
}

/// The benchmark manager handed to `criterion_group!` targets.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_samples: 12 }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into_id(), self.default_samples, None, &[], &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples,
            throughput: None,
            meta: Vec::new(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    meta: Vec<(String, f64)>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Attaches numeric metadata (problem size, nnz, modelled
    /// bytes-per-update, …) recorded as extra fields on every subsequent
    /// benchmark's JSON line. Sticky until the next call replaces it.
    /// Extension over the real criterion API: auditable roofline claims
    /// need the workload parameters next to the timing.
    pub fn meta(&mut self, entries: &[(&str, f64)]) -> &mut Self {
        self.meta = entries.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.samples, self.throughput, &self.meta, &mut f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.samples, self.throughput, &self.meta, &mut |b| f(b, input));
        self
    }

    /// Ends the group (report flushing is immediate; this is for API
    /// compatibility).
    pub fn finish(&mut self) {}
}

/// Declares a bench group function calling each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            sample_budget: Duration::from_millis(1),
            samples: 3,
            result_ns: f64::NAN,
            total_iters: 0,
        };
        b.iter(|| black_box((0..100u64).sum::<u64>()));
        assert!(b.result_ns.is_finite() && b.result_ns > 0.0);
        assert!(b.total_iters > 0);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 5).into_id(), "f/5");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
        assert_eq!("plain".into_id(), "plain");
    }

    #[test]
    fn format_time_units() {
        assert!(format_time(12.0).ends_with("ns"));
        assert!(format_time(12_000.0).ends_with("µs"));
        assert!(format_time(12_000_000.0).ends_with("ms"));
        assert!(format_time(12_000_000_000.0).ends_with(" s"));
    }
}
