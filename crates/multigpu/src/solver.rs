//! The multi-device async-(k) driver.

use abr_core::async_block::AsyncJacobiKernel;
use abr_core::{AsyncBlockSolver, ExecutorKind, SolveOptions, SolveResult};
use abr_gpu::timing::CommStrategy;
use abr_gpu::{HaloExchange, ShardPlan, SimOptions, TimingModel, Topology, UpdateTrace};
use abr_sparse::{CsrMatrix, Result, RowPartition};

/// A multi-GPU async-(k) configuration.
#[derive(Debug, Clone)]
pub struct MultiGpuSolver {
    /// The per-device async-(k) numerics.
    pub base: AsyncBlockSolver,
    /// Host + devices.
    pub topology: Topology,
    /// Which §3.4 communication scheme prices the exchanges.
    pub strategy: CommStrategy,
    /// Thread-block (subdomain) size within each device slice.
    pub thread_block_size: usize,
    /// The wall-clock cost model.
    pub timing: TimingModel,
}

/// A solve plus its modelled wall-clock cost.
#[derive(Debug, Clone)]
pub struct MultiGpuResult {
    /// The numerical outcome.
    pub solve: SolveResult,
    /// Modelled seconds per global iteration (marginal).
    pub seconds_per_iteration: f64,
    /// Modelled total seconds including setup.
    pub seconds_total: f64,
    /// The executor's trace — realised staleness histogram and skew
    /// watermark — when the solve ran on the persistent sharded path
    /// (`ExecutorKind::Threaded` without history recording); `None` on
    /// the DES and chunked paths, which don't realise the strategies'
    /// communication semantics.
    pub trace: Option<UpdateTrace>,
    /// The halo refresh cadence the strategy ran with: global rounds per
    /// stage refresh (from the timing model's transfer/compute ratio), or
    /// `0` for DK's live remote reads.
    pub halo_epoch_rounds: usize,
}

impl MultiGpuSolver {
    /// A solver over `n_gpus` devices of the paper's testbed with the
    /// given strategy, async-(5), thread blocks of 448.
    pub fn supermicro(n_gpus: usize, strategy: CommStrategy) -> Self {
        MultiGpuSolver {
            base: AsyncBlockSolver::async_k(5),
            topology: Topology::supermicro(n_gpus),
            strategy,
            thread_block_size: 448,
            timing: TimingModel::calibrated(),
        }
    }

    /// The device-level and refined (thread-block) partitions for an
    /// `n`-row system.
    pub fn partitions(&self, n: usize) -> Result<(RowPartition, RowPartition)> {
        let devices = RowPartition::equal_count(n, self.topology.n_devices())?;
        let blocks = devices.refine(self.thread_block_size)?;
        Ok((devices, blocks))
    }

    /// The block-index shard offsets aligned to the device boundaries:
    /// entry `d` is the index of the first thread block on device `d`.
    /// `refine` never lets a block straddle a device edge, so every
    /// device slice is a contiguous block range.
    pub fn device_shard_offsets(devices: &RowPartition, blocks: &RowPartition) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(devices.len() + 1);
        offsets.push(0);
        for dev in devices.blocks() {
            offsets.push(
                if dev.end == blocks.n() { blocks.len() } else { blocks.block_of(dev.end) },
            );
        }
        offsets
    }

    /// Runs the solve and prices it.
    ///
    /// On the DES path the strategies share identical numerics and differ
    /// only in price; on the persistent threaded path (the default
    /// [`ExecutorKind::Threaded`] without history recording) the executor
    /// is given the *device* shard partition and a [`HaloExchange`] that
    /// realises the strategy's communication semantics — DK workers read
    /// remote components live, DC through a per-device stage refreshed
    /// straight from the master copy every epoch, AMC through a stage
    /// refreshed from a host-side stage (one extra epoch of staleness).
    /// The three schemes then produce genuinely different staleness
    /// distributions and convergence trajectories (the paper's
    /// Fig. 12–14 trade-off), reported through
    /// [`MultiGpuResult::trace`].
    pub fn solve(
        &self,
        a: &CsrMatrix,
        rhs: &[f64],
        x0: &[f64],
        opts: &SolveOptions,
    ) -> Result<MultiGpuResult> {
        let (devices, blocks) = self.partitions(a.n_rows())?;
        // Compile the block plan once; the same kernel drives the solve
        // and feeds its nnz_local to the timing model.
        let kernel = AsyncJacobiKernel::with_sweep(
            a,
            rhs,
            &blocks,
            self.base.local_iters,
            self.base.damping,
            self.base.local_sweep,
        )?;
        let halo_epoch_rounds = self.timing.halo_epoch_rounds(
            &self.topology,
            self.strategy,
            a.n_rows(),
            a.nnz(),
            kernel.nnz_local(),
            self.base.local_iters,
        );

        let (solve, trace) = match &self.base.executor {
            // DES: one SM pool per device; communication is priced but
            // not realised, so all strategies produce identical iterates
            // (the pricing-isolation tests rely on this).
            ExecutorKind::Sim(sim) => {
                let base = AsyncBlockSolver {
                    executor: ExecutorKind::Sim(SimOptions {
                        n_workers: sim.n_workers * self.topology.n_devices(),
                        ..sim.clone()
                    }),
                    ..self.base.clone()
                };
                let solve =
                    base.solve_with_kernel(a, rhs, x0, &kernel, opts, &abr_gpu::kernel::AllowAll)?;
                (solve, None)
            }
            // Persistent threaded: shard the executor by *device slices*
            // (not worker count) and realise the strategy through the
            // halo exchange. History recording still needs the chunked
            // driver, which has no halo semantics.
            ExecutorKind::Threaded(_) if !opts.record_history => {
                let shard_offsets = Self::device_shard_offsets(&devices, &blocks);
                let plan = ShardPlan::from_offsets(&shard_offsets);
                let device_rows: Vec<usize> = std::iter::once(0)
                    .chain(devices.blocks().iter().map(|d| d.end))
                    .collect();
                let halo = HaloExchange::for_strategy(
                    self.strategy,
                    &device_rows,
                    x0,
                    halo_epoch_rounds,
                );
                let (solve, trace) = self.base.solve_persistent_sharded(
                    a,
                    rhs,
                    x0,
                    &kernel,
                    opts,
                    &abr_gpu::kernel::AllowAll,
                    Some(&plan),
                    halo.as_ref(),
                )?;
                (solve, Some(trace))
            }
            // Legacy chunked paths: unified iterate, no halo semantics.
            ExecutorKind::Threaded(_) | ExecutorKind::ThreadedChunked(_) => {
                let solve = self.base.solve_with_kernel(
                    a,
                    rhs,
                    x0,
                    &kernel,
                    opts,
                    &abr_gpu::kernel::AllowAll,
                )?;
                (solve, None)
            }
        };
        let seconds_per_iteration = self.timing.multi_gpu_async_iteration(
            &self.topology,
            self.strategy,
            a.n_rows(),
            a.nnz(),
            kernel.nnz_local(),
            self.base.local_iters,
        );
        let seconds_total =
            self.timing.gpu_setup + seconds_per_iteration * solve.iterations as f64;
        Ok(MultiGpuResult { solve, seconds_per_iteration, seconds_total, trace, halo_epoch_rounds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_sparse::gen::trefethen;

    fn system() -> (CsrMatrix, Vec<f64>) {
        let a = trefethen(400).unwrap();
        let rhs = a.mul_vec(&vec![1.0; 400]).unwrap();
        (a, rhs)
    }

    #[test]
    fn all_strategies_solve_identically_priced_differently() {
        let (a, rhs) = system();
        let opts = SolveOptions::fixed_iterations(40);
        let mut times = Vec::new();
        let mut finals = Vec::new();
        for strategy in CommStrategy::ALL {
            let mut s = MultiGpuSolver::supermicro(2, strategy);
            s.thread_block_size = 64;
            let r = s.solve(&a, &rhs, &vec![0.0; 400], &opts).unwrap();
            assert!(r.solve.final_residual < 1e-4, "{strategy:?}: {}", r.solve.final_residual);
            times.push(r.seconds_per_iteration);
            finals.push(r.solve.final_residual);
        }
        // identical numerics (same partition, same seeds)
        assert_eq!(finals[0], finals[1]);
        assert_eq!(finals[1], finals[2]);
        // different prices
        assert_ne!(times[0], times[1]);
        assert!(times[2] > times[1], "DK pricier than DC: {times:?}");
    }

    #[test]
    fn threaded_executor_solves_to_tolerance_and_is_priced() {
        // The multi-device driver through the persistent-worker fabric:
        // same partitioning and pricing, real threads underneath with the
        // concurrent monitor stopping them.
        let (a, rhs) = system();
        let mut s = MultiGpuSolver::supermicro(2, CommStrategy::Amc);
        s.thread_block_size = 64;
        s.base.executor = ExecutorKind::Threaded(abr_gpu::ThreadedOptions::default());
        let opts = SolveOptions::to_tolerance(1e-8, 20_000);
        let r = s.solve(&a, &rhs, &vec![0.0; 400], &opts).unwrap();
        assert!(r.solve.converged, "residual {}", r.solve.final_residual);
        assert!(r.solve.iterations < 20_000, "monitor must stop early");
        assert!(r.seconds_total > 0.0 && r.seconds_per_iteration > 0.0);
    }

    /// The acceptance criterion of the realised-communication work: at an
    /// equal round budget, DK's live remote reads must beat AMC's
    /// twice-staged halos numerically, while the pricing keeps the paper's
    /// opposite order (AMC cheapest, DK priciest) — the Fig. 12–14
    /// trade-off.
    #[test]
    fn dk_fresher_than_amc_at_equal_rounds() {
        let (a, rhs) = system();
        // A fixed round budget with no history recording: the persistent
        // sharded path (which realises the halo semantics) handles the
        // solve, and the fixed budget makes the runs comparable.
        let opts =
            SolveOptions { record_history: false, ..SolveOptions::fixed_iterations(60) };
        let run = |strategy: CommStrategy| {
            let mut s = MultiGpuSolver::supermicro(2, strategy);
            s.thread_block_size = 64;
            s.base.executor = ExecutorKind::Threaded(abr_gpu::ThreadedOptions::default());
            s.solve(&a, &rhs, &vec![0.0; 400], &opts).unwrap()
        };
        let amc = run(CommStrategy::Amc);
        let dc = run(CommStrategy::Dc);
        let dk = run(CommStrategy::Dk);

        // Staleness order: AMC's host-staged epochs lag DC's direct
        // copies, DK reads live.
        assert!(amc.halo_epoch_rounds > 0 && dc.halo_epoch_rounds > 0);
        assert_eq!(dk.halo_epoch_rounds, 0, "DK has no stage cadence");
        let max_shift = |r: &MultiGpuResult| {
            r.trace.as_ref().unwrap().staleness.max_shift().unwrap_or(0)
        };
        assert!(
            max_shift(&amc) > max_shift(&dk),
            "AMC must realise staler reads: {} vs {}",
            max_shift(&amc),
            max_shift(&dk)
        );

        // Convergence order at an equal round budget: fresher reads win.
        assert!(
            dk.solve.final_residual < amc.solve.final_residual,
            "DK {} must beat AMC {}",
            dk.solve.final_residual,
            amc.solve.final_residual
        );

        // Pricing keeps the paper's opposite order.
        assert!(
            amc.seconds_per_iteration < dc.seconds_per_iteration
                && dc.seconds_per_iteration < dk.seconds_per_iteration,
            "pricing order AMC < DC < DK: {} / {} / {}",
            amc.seconds_per_iteration,
            dc.seconds_per_iteration,
            dk.seconds_per_iteration
        );

        // And the persistent path measures real skew, within the lag gate.
        let lag = abr_gpu::PersistentOptions::default().max_round_lag;
        for r in [&amc, &dc, &dk] {
            let skew = r.trace.as_ref().unwrap().max_skew;
            assert!(skew > 0, "a concurrent run cannot report zero skew");
            assert!(skew <= lag + 1, "skew {skew} exceeds lag bound {}", lag + 1);
        }
    }

    #[test]
    fn shards_nest_inside_device_slices() {
        let s = MultiGpuSolver::supermicro(4, CommStrategy::Dc);
        let (devices, blocks) = s.partitions(20_000).unwrap();
        let offsets = MultiGpuSolver::device_shard_offsets(&devices, &blocks);
        assert_eq!(offsets.len(), 5);
        assert_eq!(offsets[0], 0);
        assert_eq!(*offsets.last().unwrap(), blocks.len());
        // Every shard's block range sits inside exactly one device slice.
        for (d, w) in offsets.windows(2).enumerate() {
            let dev = devices.block(d);
            for bi in w[0]..w[1] {
                let b = blocks.block(bi);
                assert!(
                    dev.start <= b.start && b.end <= dev.end,
                    "block {bi} [{}, {}) escapes device {d} [{}, {})",
                    b.start,
                    b.end,
                    dev.start,
                    dev.end
                );
            }
        }
    }

    #[test]
    fn partitions_nest_on_device_boundaries() {
        let s = MultiGpuSolver::supermicro(4, CommStrategy::Amc);
        let (devices, blocks) = s.partitions(20000).unwrap();
        assert_eq!(devices.len(), 4);
        blocks.validate().unwrap();
        for b in blocks.blocks() {
            assert_eq!(devices.block_of(b.start), devices.block_of(b.end - 1));
        }
    }

    #[test]
    fn amc_two_gpus_nearly_halve_iteration_time() {
        let (a, rhs) = system();
        let opts = SolveOptions::fixed_iterations(10);
        let t = |g: usize| {
            let mut s = MultiGpuSolver::supermicro(g, CommStrategy::Amc);
            s.thread_block_size = 64;
            s.solve(&a, &rhs, &vec![0.0; 400], &opts).unwrap().seconds_per_iteration
        };
        // On this small system n^2 bookkeeping is tiny, so assert the
        // model on the paper's actual size instead.
        let m = TimingModel::calibrated();
        let big = |g: usize| {
            m.multi_gpu_async_iteration(
                &Topology::supermicro(g),
                CommStrategy::Amc,
                20000,
                554466,
                554466 / 2,
                5,
            )
        };
        assert!(big(2) < 0.6 * big(1), "{} -> {}", big(1), big(2));
        assert!(big(3) > big(2), "QPI penalty: {} -> {}", big(2), big(3));
        // and the end-to-end path produces *some* consistent pricing
        assert!(t(2) > 0.0 && t(1) > 0.0);
    }
}
