//! The multi-device async-(k) driver.

use abr_core::async_block::AsyncJacobiKernel;
use abr_core::{AsyncBlockSolver, ExecutorKind, SolveOptions, SolveResult};
use abr_gpu::timing::CommStrategy;
use abr_gpu::{SimOptions, TimingModel, Topology};
use abr_sparse::{CsrMatrix, Result, RowPartition};

/// A multi-GPU async-(k) configuration.
#[derive(Debug, Clone)]
pub struct MultiGpuSolver {
    /// The per-device async-(k) numerics.
    pub base: AsyncBlockSolver,
    /// Host + devices.
    pub topology: Topology,
    /// Which §3.4 communication scheme prices the exchanges.
    pub strategy: CommStrategy,
    /// Thread-block (subdomain) size within each device slice.
    pub thread_block_size: usize,
    /// The wall-clock cost model.
    pub timing: TimingModel,
}

/// A solve plus its modelled wall-clock cost.
#[derive(Debug, Clone)]
pub struct MultiGpuResult {
    /// The numerical outcome.
    pub solve: SolveResult,
    /// Modelled seconds per global iteration (marginal).
    pub seconds_per_iteration: f64,
    /// Modelled total seconds including setup.
    pub seconds_total: f64,
}

impl MultiGpuSolver {
    /// A solver over `n_gpus` devices of the paper's testbed with the
    /// given strategy, async-(5), thread blocks of 448.
    pub fn supermicro(n_gpus: usize, strategy: CommStrategy) -> Self {
        MultiGpuSolver {
            base: AsyncBlockSolver::async_k(5),
            topology: Topology::supermicro(n_gpus),
            strategy,
            thread_block_size: 448,
            timing: TimingModel::calibrated(),
        }
    }

    /// The device-level and refined (thread-block) partitions for an
    /// `n`-row system.
    pub fn partitions(&self, n: usize) -> Result<(RowPartition, RowPartition)> {
        let devices = RowPartition::equal_count(n, self.topology.n_devices())?;
        let blocks = devices.refine(self.thread_block_size)?;
        Ok((devices, blocks))
    }

    /// Runs the solve and prices it.
    pub fn solve(
        &self,
        a: &CsrMatrix,
        rhs: &[f64],
        x0: &[f64],
        opts: &SolveOptions,
    ) -> Result<MultiGpuResult> {
        let (_devices, blocks) = self.partitions(a.n_rows())?;
        // Give the executor one SM pool per device.
        let base = match &self.base.executor {
            ExecutorKind::Sim(sim) => AsyncBlockSolver {
                executor: ExecutorKind::Sim(SimOptions {
                    n_workers: sim.n_workers * self.topology.n_devices(),
                    ..sim.clone()
                }),
                ..self.base.clone()
            },
            // Both threaded fabrics already size their worker pools from
            // the host; device count only affects the pricing below. The
            // persistent executor's shards then play the per-device block
            // ranges (contiguous, exactly the device slices).
            ExecutorKind::Threaded(_) | ExecutorKind::ThreadedChunked(_) => self.base.clone(),
        };
        // Compile the block plan once; the same kernel drives the solve
        // and feeds its nnz_local to the timing model.
        let kernel = AsyncJacobiKernel::with_sweep(
            a,
            rhs,
            &blocks,
            base.local_iters,
            base.damping,
            base.local_sweep,
        )?;
        let solve = base.solve_with_kernel(a, rhs, x0, &kernel, opts, &abr_gpu::kernel::AllowAll)?;
        let seconds_per_iteration = self.timing.multi_gpu_async_iteration(
            &self.topology,
            self.strategy,
            a.n_rows(),
            a.nnz(),
            kernel.nnz_local(),
            base.local_iters,
        );
        let seconds_total =
            self.timing.gpu_setup + seconds_per_iteration * solve.iterations as f64;
        Ok(MultiGpuResult { solve, seconds_per_iteration, seconds_total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_sparse::gen::trefethen;

    fn system() -> (CsrMatrix, Vec<f64>) {
        let a = trefethen(400).unwrap();
        let rhs = a.mul_vec(&vec![1.0; 400]).unwrap();
        (a, rhs)
    }

    #[test]
    fn all_strategies_solve_identically_priced_differently() {
        let (a, rhs) = system();
        let opts = SolveOptions::fixed_iterations(40);
        let mut times = Vec::new();
        let mut finals = Vec::new();
        for strategy in CommStrategy::ALL {
            let mut s = MultiGpuSolver::supermicro(2, strategy);
            s.thread_block_size = 64;
            let r = s.solve(&a, &rhs, &vec![0.0; 400], &opts).unwrap();
            assert!(r.solve.final_residual < 1e-4, "{strategy:?}: {}", r.solve.final_residual);
            times.push(r.seconds_per_iteration);
            finals.push(r.solve.final_residual);
        }
        // identical numerics (same partition, same seeds)
        assert_eq!(finals[0], finals[1]);
        assert_eq!(finals[1], finals[2]);
        // different prices
        assert_ne!(times[0], times[1]);
        assert!(times[2] > times[1], "DK pricier than DC: {times:?}");
    }

    #[test]
    fn threaded_executor_solves_to_tolerance_and_is_priced() {
        // The multi-device driver through the persistent-worker fabric:
        // same partitioning and pricing, real threads underneath with the
        // concurrent monitor stopping them.
        let (a, rhs) = system();
        let mut s = MultiGpuSolver::supermicro(2, CommStrategy::Amc);
        s.thread_block_size = 64;
        s.base.executor = ExecutorKind::Threaded(abr_gpu::ThreadedOptions::default());
        let opts = SolveOptions::to_tolerance(1e-8, 20_000);
        let r = s.solve(&a, &rhs, &vec![0.0; 400], &opts).unwrap();
        assert!(r.solve.converged, "residual {}", r.solve.final_residual);
        assert!(r.solve.iterations < 20_000, "monitor must stop early");
        assert!(r.seconds_total > 0.0 && r.seconds_per_iteration > 0.0);
    }

    #[test]
    fn partitions_nest_on_device_boundaries() {
        let s = MultiGpuSolver::supermicro(4, CommStrategy::Amc);
        let (devices, blocks) = s.partitions(20000).unwrap();
        assert_eq!(devices.len(), 4);
        blocks.validate().unwrap();
        for b in blocks.blocks() {
            assert_eq!(devices.block_of(b.start), devices.block_of(b.end - 1));
        }
    }

    #[test]
    fn amc_two_gpus_nearly_halve_iteration_time() {
        let (a, rhs) = system();
        let opts = SolveOptions::fixed_iterations(10);
        let t = |g: usize| {
            let mut s = MultiGpuSolver::supermicro(g, CommStrategy::Amc);
            s.thread_block_size = 64;
            s.solve(&a, &rhs, &vec![0.0; 400], &opts).unwrap().seconds_per_iteration
        };
        // On this small system n^2 bookkeeping is tiny, so assert the
        // model on the paper's actual size instead.
        let m = TimingModel::calibrated();
        let big = |g: usize| {
            m.multi_gpu_async_iteration(
                &Topology::supermicro(g),
                CommStrategy::Amc,
                20000,
                554466,
                554466 / 2,
                5,
            )
        };
        assert!(big(2) < 0.6 * big(1), "{} -> {}", big(1), big(2));
        assert!(big(3) > big(2), "QPI penalty: {} -> {}", big(2), big(3));
        // and the end-to-end path produces *some* consistent pricing
        assert!(t(2) > 0.0 && t(1) > 0.0);
    }
}
