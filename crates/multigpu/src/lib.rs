#![warn(missing_docs)]

//! # abr-multigpu
//!
//! Multi-GPU block-asynchronous iteration (paper §3.4 / §4.6).
//!
//! The system is first split into one contiguous slice per device; each
//! device's slice is then re-partitioned into thread blocks, and the
//! familiar async-(k) iteration runs over the *refined* partition — the
//! paper notes this "three-stage" view is algorithmically identical to
//! the two-stage one because both outer levels are asynchronous. What
//! distinguishes the three communication strategies (AMC, DC, DK) is not
//! the numerics but *where the iterate lives and which link every
//! exchange crosses*, i.e. the per-iteration cost — modelled by
//! [`abr_gpu::timing::TimingModel::multi_gpu_async_iteration`].
//!
//! [`MultiGpuSolver`] therefore runs the real numerics once per
//! configuration (device count changes the partition and hence the
//! update pattern) and prices the run per strategy, which is exactly what
//! Figure 11 reports (time-to-convergence for AMC/DC/DK × 1–4 GPUs).

pub mod solver;

pub use abr_gpu::timing::CommStrategy;
pub use solver::{MultiGpuResult, MultiGpuSolver};
