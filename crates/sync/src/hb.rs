//! FastTrack-style happens-before shadow state for the **data plane**.
//!
//! The model explorer (PR 4) audits the control-plane atomics: tickets,
//! stop flag, elections. What it cannot see is the f64 payload data those
//! atomics are supposed to order — `AtomicF64Vec` components,
//! `ResidualSlots`' Relaxed value bits under a Release epoch, halo stage
//! copies, per-worker scratch. This module is the shadow state that
//! closes the gap: per-thread vector clocks, per-cell release clocks, and
//! per-data-cell bounded write histories, driven by hooks wired into
//!
//! * the facade itself (`real.rs` under `--features sanitize`,
//!   `model_impl::cell` under `--features model`): every
//!   `Release`-flavoured operation joins the releasing thread's clock
//!   into the cell's *sync clock*; every `Acquire`-flavoured operation
//!   joins the cell's sync clock back into the acquiring thread — the
//!   standard vector-clock algebra of FastTrack (Flanagan & Freund), kept
//!   deliberately simple because only a handful of cells are sync cells;
//! * the data-plane structures in abr-gpu (`residual.rs`, `xview.rs`,
//!   `halo.rs`, `kernel.rs`, `persistent.rs`), which classify each access
//!   with an [`Access`] kind so the detector knows which races are
//!   *declared* (stale iterate reads — the algorithm's entire point) and
//!   which would be bugs (an unpublished `ResidualSlots` value read, two
//!   writers inside one in-flight block region).
//!
//! # Modes
//!
//! Under `--features model` the hooks fire from the explorer's virtual
//! threads and reflect the *actual* synchronizes-with edges of the
//! explored interleaving (an `Acquire` load only joins when it really
//! read a release-written entry). Under `--features sanitize` the hooks
//! fire from real threads around the real atomic ops: release-side hooks
//! run *before* the operation and acquire-side hooks *after*, so a real
//! load that observed a release implies the release hook already ran.
//! The sanitize mode therefore over-approximates happens-before (an
//! acquire joins the cell's whole accumulated sync clock, not the
//! specific store it read) — it can miss races, never invent them. A
//! mutation that *removes* an ordering (`Release` → `Relaxed`) removes
//! the hook with it, which is exactly what the mutation tests check.
//!
//! # What the detector checks
//!
//! * [`Access::WriteExcl`] — this write must happen-after every recorded
//!   write by *other* threads (per-block component stores under the
//!   in-flight flag, scratch claims). Violation: [`RaceKind::ConflictingWrite`].
//! * [`Access::ReadPublished`] — this read must happen-after at least one
//!   recorded write (the `ResidualSlots` value read after a warm
//!   `Acquire` epoch). Violation: [`RaceKind::UnsyncedPublishedRead`].
//! * [`Access::WriteRacy`] / [`Access::ReadRacy`] — declared racy
//!   (halo stage copies, mid-solve iterate reads); recorded but never
//!   flagged.
//! * Region discipline — a halo refresh is elect → copy → stamp in one
//!   thread's program order. [`on_stamp`] verifies the stamping thread
//!   recorded a copy after its election. Violation:
//!   [`RaceKind::StampWithoutCopy`].
//!
//! # Scope and limitations
//!
//! Shadow state is keyed by cell *address* ([`id_of`]), which keeps the
//! facade's zero-cost layout intact. Exclusive resets
//! (`set_exclusive`, `reset_from`) clear a cell's shadow — the detector
//! assumes pre-spawn initialisation flows through exclusive borrows, as
//! the executors' workspace reuse already does. Data-cell write
//! histories are bounded (the newest [`WRITE_WINDOW`] writes); an
//! overflowing window conservatively suppresses checks on that cell
//! rather than reporting stale evidence. Checks only run inside a
//! [`session`]; outside one every hook is a single relaxed-load test of
//! a global flag.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering as StdOrdering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// How a data-plane access participates in the happens-before check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Declared-racy read (stale iterate reads, snapshot copies). Never
    /// flagged — staleness is the algorithm's contract.
    ReadRacy,
    /// A read that the protocol claims is ordered after a publication
    /// (e.g. a `ResidualSlots` value read behind an `Acquire` epoch).
    /// Must be covered by at least one recorded write.
    ReadPublished,
    /// A write that must be exclusive: every prior write by another
    /// thread must happen-before it (block commits under the in-flight
    /// flag, scratch claims).
    WriteExcl,
    /// Declared-racy write (halo stage copies: winners of successive
    /// epochs may copy concurrently by design). Recorded, never flagged.
    WriteRacy,
}

/// The class of a detected race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    /// A [`Access::ReadPublished`] read with no happens-before-ordered
    /// write to justify the value it returned.
    UnsyncedPublishedRead,
    /// A [`Access::WriteExcl`] write not ordered after another thread's
    /// recorded write to the same cell.
    ConflictingWrite,
    /// A freshness stamp recorded without a same-thread stage copy after
    /// the election it belongs to.
    StampWithoutCopy,
}

/// One detected happens-before violation.
#[derive(Debug, Clone)]
pub struct Race {
    /// The violation class.
    pub kind: RaceKind,
    /// The shadow key ([`id_of`]) of the cell or region involved.
    pub cell: usize,
    /// Human-readable evidence (thread slots and clocks).
    pub msg: String,
}

/// Newest writes remembered per data cell; older evidence is dropped and
/// the cell's checks are conservatively suppressed from then on.
const WRITE_WINDOW: usize = 8;

/// At most this many races are recorded per session (the first ones are
/// the informative ones; a broken ordering in a hot loop would otherwise
/// build an unbounded report).
const MAX_RACES: usize = 64;

type Vc = Vec<u64>;

fn vc_get(vc: &[u64], slot: usize) -> u64 {
    vc.get(slot).copied().unwrap_or(0)
}

fn vc_join(into: &mut Vc, from: &[u64]) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (i, &c) in from.iter().enumerate() {
        if into[i] < c {
            into[i] = c;
        }
    }
}

#[derive(Default)]
struct CellShadow {
    /// Accumulated release clock: the join of every releasing thread's
    /// vector clock at its release operations on this cell.
    sync_clock: Vc,
}

#[derive(Default)]
struct DataShadow {
    /// Newest recorded writes, as `(slot, clock)` pairs.
    writes: Vec<(usize, u64)>,
    /// The window dropped evidence; suppress checks rather than report
    /// against an incomplete history.
    overflow: bool,
}

#[derive(Default)]
struct RegionShadow {
    /// Per-slot clock of the last election won for this region.
    elected: HashMap<usize, u64>,
    /// Per-slot clock of the last completed copy into this region.
    copied: HashMap<usize, u64>,
}

#[derive(Default)]
struct State {
    /// Session generation; bumping it invalidates every thread slot.
    gen: u64,
    /// Per-slot vector clocks.
    threads: Vec<Vc>,
    /// Sync-cell shadows (release clocks), keyed by address.
    cells: HashMap<usize, CellShadow>,
    /// Data-cell shadows (write histories), keyed by address.
    data: HashMap<usize, DataShadow>,
    /// Region shadows (halo elect/copy/stamp discipline).
    regions: HashMap<usize, RegionShadow>,
    races: Vec<Race>,
}

/// Fast path: hooks are free when no session is active.
static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: OnceLock<Mutex<State>> = OnceLock::new();
static SESSION: OnceLock<Mutex<()>> = OnceLock::new();

std::thread_local! {
    /// `(generation, slot)` of this thread's registration; a stale
    /// generation means re-register.
    static SLOT: std::cell::Cell<(u64, usize)> = const { std::cell::Cell::new((0, usize::MAX)) };
}

fn state() -> MutexGuard<'static, State> {
    STATE
        .get_or_init(|| Mutex::new(State::default()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Whether a sanitizer session is currently running (cheap relaxed load).
#[inline]
pub fn is_active() -> bool {
    ENABLED.load(StdOrdering::Relaxed)
}

/// The shadow key of a cell or region: its address. Stable for the
/// lifetime of the owning allocation; exclusive resets clear the shadow
/// entry so storage reuse across solves cannot leak stale evidence.
#[inline]
pub fn id_of<T>(x: &T) -> usize {
    x as *const T as usize
}

/// Registers (or refreshes) the calling thread's slot and advances its
/// own clock by one; returns `(slot, new_clock)`.
fn tick(st: &mut State) -> (usize, u64) {
    let gen = st.gen;
    let slot = SLOT.with(|s| {
        let (g, slot) = s.get();
        if g == gen && slot != usize::MAX {
            slot
        } else {
            let slot = st.threads.len();
            // Own component starts at 1 so an unsynchronized thread's
            // writes are never accidentally "covered" by a fresh VC of
            // zeros.
            let mut vc = vec![0; slot + 1];
            vc[slot] = 1;
            st.threads.push(vc);
            s.set((gen, slot));
            slot
        }
    });
    let vc = &mut st.threads[slot];
    if vc.len() <= slot {
        vc.resize(slot + 1, 0);
    }
    vc[slot] += 1;
    (slot, vc[slot])
}

fn report(st: &mut State, kind: RaceKind, cell: usize, msg: String) {
    if st.races.len() < MAX_RACES {
        st.races.push(Race { kind, cell, msg });
    }
}

/// Runs `f` with the detector armed and returns its result together with
/// every race detected while it ran. Sessions are serialized process-wide
/// (concurrent test functions queue up); entering a session clears all
/// shadow state and invalidates thread slots from earlier sessions.
pub fn session<R>(f: impl FnOnce() -> R) -> (R, Vec<Race>) {
    let _serial = SESSION
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    {
        let mut st = state();
        st.gen += 1;
        st.threads.clear();
        st.cells.clear();
        st.data.clear();
        st.regions.clear();
        st.races.clear();
    }
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            ENABLED.store(false, StdOrdering::SeqCst);
        }
    }
    let disarm = Disarm;
    ENABLED.store(true, StdOrdering::SeqCst);
    let r = f();
    drop(disarm);
    let races = std::mem::take(&mut state().races);
    (r, races)
}

/// Hook: the calling thread performed a `Release`-flavoured operation on
/// the sync cell `cell` — join its clock into the cell's sync clock.
/// In sanitize mode this must run *before* the real operation.
#[inline]
pub fn on_release(cell: usize) {
    if !is_active() {
        return;
    }
    let mut st = state();
    let (slot, _) = tick(&mut st);
    let vc = st.threads[slot].clone();
    vc_join(&mut st.cells.entry(cell).or_default().sync_clock, &vc);
}

/// Hook: the calling thread performed an `Acquire`-flavoured operation on
/// the sync cell `cell` — join the cell's sync clock into its own.
/// In sanitize mode this must run *after* the real operation.
#[inline]
pub fn on_acquire(cell: usize) {
    if !is_active() {
        return;
    }
    let mut st = state();
    let (slot, _) = tick(&mut st);
    let Some(sync) = st.cells.get(&cell).map(|c| c.sync_clock.clone()) else {
        return;
    };
    vc_join(&mut st.threads[slot], &sync);
}

/// Hook: a data-plane read of `cell`, classified by `kind`.
#[inline]
pub fn on_data_read(cell: usize, kind: Access) {
    if !is_active() || kind != Access::ReadPublished {
        return;
    }
    let mut st = state();
    let (slot, _) = tick(&mut st);
    let Some(d) = st.data.get(&cell) else {
        return; // never written (or exclusively reset): the initial value
    };
    if d.overflow || d.writes.is_empty() {
        return;
    }
    let vc = &st.threads[slot];
    let covered = d.writes.iter().any(|&(ws, wc)| vc_get(vc, ws) >= wc);
    if !covered {
        let writes = d.writes.clone();
        report(
            &mut st,
            RaceKind::UnsyncedPublishedRead,
            cell,
            format!(
                "published read by thread slot {slot} covers none of the \
                 recorded writes {writes:?} — the publication edge is missing"
            ),
        );
    }
}

/// Hook: a data-plane write of `cell`, classified by `kind`.
#[inline]
pub fn on_data_write(cell: usize, kind: Access) {
    if !is_active() {
        return;
    }
    let mut st = state();
    let (slot, clock) = tick(&mut st);
    let vc = st.threads[slot].clone();
    let d = st.data.entry(cell).or_default();
    if kind == Access::WriteExcl && !d.overflow {
        let conflict = d
            .writes
            .iter()
            .find(|&&(ws, wc)| ws != slot && vc_get(&vc, ws) < wc)
            .copied();
        if let Some((ws, wc)) = conflict {
            report(
                &mut st,
                RaceKind::ConflictingWrite,
                cell,
                format!(
                    "exclusive write by thread slot {slot} does not happen-after \
                     thread slot {ws}'s write at clock {wc} — the hand-off edge is missing"
                ),
            );
        }
    }
    let d = st.data.entry(cell).or_default();
    d.writes.push((slot, clock));
    if d.writes.len() > WRITE_WINDOW {
        d.writes.remove(0);
        d.overflow = true;
    }
}

/// Hook: the calling thread won a refresh election for `region`.
#[inline]
pub fn on_elect(region: usize) {
    if !is_active() {
        return;
    }
    let mut st = state();
    let (slot, clock) = tick(&mut st);
    st.regions.entry(region).or_default().elected.insert(slot, clock);
}

/// Hook: the calling thread completed a stage copy into `region`.
#[inline]
pub fn on_copy(region: usize) {
    if !is_active() {
        return;
    }
    let mut st = state();
    let (slot, clock) = tick(&mut st);
    st.regions.entry(region).or_default().copied.insert(slot, clock);
}

/// Hook: the calling thread stamped `region`'s freshness watermark. The
/// stamp must follow a same-thread copy that followed the election.
#[inline]
pub fn on_stamp(region: usize) {
    if !is_active() {
        return;
    }
    let mut st = state();
    let (slot, _) = tick(&mut st);
    let Some(r) = st.regions.get(&region) else { return };
    let Some(&elected) = r.elected.get(&slot) else {
        return; // stamp outside an observed election: out of scope
    };
    let copied = r.copied.get(&slot).copied().unwrap_or(0);
    if copied < elected {
        report(
            &mut st,
            RaceKind::StampWithoutCopy,
            region,
            format!(
                "thread slot {slot} stamped a refresh it was elected for at clock \
                 {elected} without completing a stage copy (last copy clock {copied})"
            ),
        );
    }
}

/// Hook: `cell` was reset through an exclusive borrow — its history is
/// gone, so drop the shadow with it (both sync and data namespaces).
#[inline]
pub fn on_reset(cell: usize) {
    if !is_active() {
        return;
    }
    let mut st = state();
    st.cells.remove(&cell);
    st.data.remove(&cell);
    st.regions.remove(&cell);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Distinct dummy addresses; the shadow only ever compares keys.
    const CELL: usize = 0x1000;
    const DATA: usize = 0x2000;
    const REGION: usize = 0x3000;

    #[test]
    fn hooks_are_inert_outside_sessions() {
        on_release(CELL);
        on_acquire(CELL);
        on_data_write(DATA, Access::WriteExcl);
        on_data_read(DATA, Access::ReadPublished);
        assert!(!is_active());
    }

    #[test]
    fn release_acquire_covers_published_read() {
        let (_, races) = session(|| {
            let t = std::thread::spawn(|| {
                on_data_write(DATA, Access::WriteExcl);
                on_release(CELL);
            });
            t.join().unwrap();
            on_acquire(CELL);
            on_data_read(DATA, Access::ReadPublished);
        });
        assert!(races.is_empty(), "unexpected races: {races:?}");
    }

    #[test]
    fn missing_release_is_caught() {
        let (_, races) = session(|| {
            let t = std::thread::spawn(|| {
                on_data_write(DATA, Access::WriteExcl);
                // no release: the publication edge is gone
            });
            t.join().unwrap();
            on_acquire(CELL);
            on_data_read(DATA, Access::ReadPublished);
        });
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::UnsyncedPublishedRead);
    }

    #[test]
    fn conflicting_exclusive_writes_are_caught_and_ordered_ones_are_not() {
        let (_, races) = session(|| {
            let t = std::thread::spawn(|| {
                on_data_write(DATA, Access::WriteExcl);
            });
            t.join().unwrap();
            // No acquire edge: this exclusive write conflicts.
            on_data_write(DATA, Access::WriteExcl);
        });
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::ConflictingWrite);

        let (_, races) = session(|| {
            let t = std::thread::spawn(|| {
                on_data_write(DATA, Access::WriteExcl);
                on_release(CELL);
            });
            t.join().unwrap();
            on_acquire(CELL);
            on_data_write(DATA, Access::WriteExcl);
        });
        assert!(races.is_empty(), "ordered hand-off flagged: {races:?}");
    }

    #[test]
    fn racy_kinds_never_flag() {
        let (_, races) = session(|| {
            let t = std::thread::spawn(|| {
                on_data_write(DATA, Access::WriteRacy);
            });
            t.join().unwrap();
            on_data_write(DATA, Access::WriteRacy);
            on_data_read(DATA, Access::ReadRacy);
        });
        assert!(races.is_empty(), "declared-racy access flagged: {races:?}");
    }

    #[test]
    fn stamp_without_copy_is_caught() {
        let (_, races) = session(|| {
            on_elect(REGION);
            on_copy(REGION);
            on_stamp(REGION); // fine: elect -> copy -> stamp
            on_elect(REGION);
            on_stamp(REGION); // second refresh skipped its copy
        });
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::StampWithoutCopy);
    }

    #[test]
    fn exclusive_reset_clears_evidence() {
        let (_, races) = session(|| {
            let t = std::thread::spawn(|| {
                on_data_write(DATA, Access::WriteExcl);
            });
            t.join().unwrap();
            on_reset(DATA);
            on_data_read(DATA, Access::ReadPublished);
            on_data_write(DATA, Access::WriteExcl);
        });
        assert!(races.is_empty(), "reset did not clear shadow: {races:?}");
    }
}
