//! Model-mode implementation of the facade: the same public API as the
//! passthrough build (`real.rs`), with every operation routed through
//! the instrumented weak-memory runtime in [`cell`]/[`rt`]. All methods
//! are `#[track_caller]` so the event log records the *call site* in
//! solver code, not the facade internals.

mod cell;
pub(crate) mod rt;

use crate::Ordering;
use cell::ModelCell;
use std::panic::Location;

/// An atomic memory fence. In model mode this is a recorded schedule
/// point with no visibility edges (see [`crate`] docs).
#[track_caller]
pub fn fence(ord: Ordering) {
    cell::fence_impl(ord);
}

fn b2u(v: bool) -> u64 {
    v as u64
}

fn u2b(v: u64) -> bool {
    v != 0
}

/// Facade over `AtomicBool` (model-instrumented build).
#[derive(Debug)]
pub struct SyncBool {
    inner: ModelCell,
}

impl Default for SyncBool {
    fn default() -> Self {
        SyncBool::new(false)
    }
}

impl SyncBool {
    /// A new cell holding `v`.
    pub fn new(v: bool) -> Self {
        SyncBool { inner: ModelCell::new(b2u(v)) }
    }

    /// Atomic load.
    #[track_caller]
    pub fn load(&self, ord: Ordering) -> bool {
        u2b(self.inner.load(ord, Location::caller()))
    }

    /// Atomic store.
    #[track_caller]
    pub fn store(&self, v: bool, ord: Ordering) {
        self.inner.store(b2u(v), ord, Location::caller());
    }

    /// Atomic compare-and-exchange.
    #[track_caller]
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.inner
            .rmw(
                success,
                failure,
                Location::caller(),
                |a| {
                    a.compare_exchange(b2u(current), b2u(new), success, failure)
                },
                |old| if old == b2u(current) { Some(b2u(new)) } else { None },
            )
            .map(u2b)
            .map_err(u2b)
    }

    /// Atomic compare-and-exchange, allowed to fail spuriously on real
    /// hardware. The model never fails spuriously: a spurious failure is
    /// a strict subset of the CAS-mismatch behaviour already explored.
    #[track_caller]
    pub fn compare_exchange_weak(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.compare_exchange(current, new, success, failure)
    }

    /// Non-atomic store through an exclusive borrow; resets the model
    /// history (no concurrent readers can exist).
    pub fn set_exclusive(&mut self, v: bool) {
        self.inner.set_exclusive(b2u(v));
    }
}

/// Facade over `AtomicU64` (model-instrumented build).
#[derive(Debug)]
pub struct SyncU64 {
    inner: ModelCell,
}

impl Default for SyncU64 {
    fn default() -> Self {
        SyncU64::new(0)
    }
}

impl SyncU64 {
    /// A new cell holding `v`.
    pub fn new(v: u64) -> Self {
        SyncU64 { inner: ModelCell::new(v) }
    }

    /// Atomic load.
    #[track_caller]
    pub fn load(&self, ord: Ordering) -> u64 {
        self.inner.load(ord, Location::caller())
    }

    /// Atomic store.
    #[track_caller]
    pub fn store(&self, v: u64, ord: Ordering) {
        self.inner.store(v, ord, Location::caller());
    }

    /// Atomic add; returns the previous value.
    #[track_caller]
    pub fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
        self.inner
            .rmw(ord, ord, Location::caller(), |a| Ok(a.fetch_add(v, ord)), |old| {
                Some(old.wrapping_add(v))
            })
            .expect("fetch_add cannot fail")
    }

    /// Atomic maximum; returns the previous value.
    #[track_caller]
    pub fn fetch_max(&self, v: u64, ord: Ordering) -> u64 {
        self.inner
            .rmw(ord, ord, Location::caller(), |a| Ok(a.fetch_max(v, ord)), |old| {
                Some(old.max(v))
            })
            .expect("fetch_max cannot fail")
    }

    /// Atomic compare-and-exchange.
    #[track_caller]
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.inner.rmw(
            success,
            failure,
            Location::caller(),
            |a| a.compare_exchange(current, new, success, failure),
            |old| if old == current { Some(new) } else { None },
        )
    }

    /// Non-atomic store through an exclusive borrow; resets the model
    /// history (no concurrent readers can exist).
    pub fn set_exclusive(&mut self, v: u64) {
        self.inner.set_exclusive(v);
    }
}

/// Facade over `AtomicUsize` (model-instrumented build).
#[derive(Debug)]
pub struct SyncUsize {
    inner: ModelCell,
}

impl Default for SyncUsize {
    fn default() -> Self {
        SyncUsize::new(0)
    }
}

impl SyncUsize {
    /// A new cell holding `v`.
    pub fn new(v: usize) -> Self {
        SyncUsize { inner: ModelCell::new(v as u64) }
    }

    /// Atomic load.
    #[track_caller]
    pub fn load(&self, ord: Ordering) -> usize {
        self.inner.load(ord, Location::caller()) as usize
    }

    /// Atomic store.
    #[track_caller]
    pub fn store(&self, v: usize, ord: Ordering) {
        self.inner.store(v as u64, ord, Location::caller());
    }

    /// Atomic add; returns the previous value.
    #[track_caller]
    pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
        self.inner
            .rmw(ord, ord, Location::caller(), |a| Ok(a.fetch_add(v as u64, ord)), |old| {
                Some((old as usize).wrapping_add(v) as u64)
            })
            .expect("fetch_add cannot fail") as usize
    }

    /// Atomic subtract; returns the previous value.
    #[track_caller]
    pub fn fetch_sub(&self, v: usize, ord: Ordering) -> usize {
        self.inner
            .rmw(ord, ord, Location::caller(), |a| Ok(a.fetch_sub(v as u64, ord)), |old| {
                Some((old as usize).wrapping_sub(v) as u64)
            })
            .expect("fetch_sub cannot fail") as usize
    }

    /// Atomic maximum; returns the previous value.
    #[track_caller]
    pub fn fetch_max(&self, v: usize, ord: Ordering) -> usize {
        self.inner
            .rmw(ord, ord, Location::caller(), |a| Ok(a.fetch_max(v as u64, ord)), |old| {
                Some(old.max(v as u64))
            })
            .expect("fetch_max cannot fail") as usize
    }

    /// Atomic compare-and-exchange.
    #[track_caller]
    pub fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        self.inner
            .rmw(
                success,
                failure,
                Location::caller(),
                |a| a.compare_exchange(current as u64, new as u64, success, failure),
                |old| if old == current as u64 { Some(new as u64) } else { None },
            )
            .map(|v| v as usize)
            .map_err(|v| v as usize)
    }

    /// Atomic compare-and-exchange, allowed to fail spuriously on real
    /// hardware; never spurious in the model (see [`SyncBool`] note).
    #[track_caller]
    pub fn compare_exchange_weak(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        self.compare_exchange(current, new, success, failure)
    }

    /// Non-atomic store through an exclusive borrow; resets the model
    /// history (no concurrent readers can exist).
    pub fn set_exclusive(&mut self, v: usize) {
        self.inner.set_exclusive(v as u64);
    }
}
