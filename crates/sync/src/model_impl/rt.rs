//! The deterministic schedule explorer: virtual threads, a seeded (or
//! bounded-preemption exhaustive) scheduler, per-thread visibility views,
//! and the event log.
//!
//! ## How a run works
//!
//! [`explore_seeded`]/[`explore_exhaustive`] run a body closure once per
//! schedule. The body executes as **virtual thread 0** on the calling OS
//! thread; [`spawn`] creates further virtual threads (each backed by an
//! OS thread that does nothing until scheduled). A single *baton*
//! serializes execution: exactly one virtual thread runs at any instant,
//! and the baton can change hands only at facade atomic operations — so
//! given the same schedule decisions, a run is fully deterministic.
//!
//! At every facade operation the scheduler makes two kinds of decision:
//! *which thread runs next* (a preemption, when it is not the current
//! one) and — for relaxed-enough loads — *which history entry the read
//! returns* (anything from the reader's coherence floor to the latest).
//! The seeded policy draws both from a splitmix64 stream; the exhaustive
//! policy enumerates the whole decision tree depth-first, bounding
//! preemptions and capping stale-read choices to the two extremes
//! (oldest-visible and latest). Both run under a fairness rule: a thread
//! that has taken [`FAIR_LIMIT`] consecutive schedule points while
//! others are runnable is forced to yield the baton (free of the
//! preemption bound), so polling spin loops cannot starve the writers
//! they are waiting on.
//!
//! Violations are ordinary panics inside the body or a spawned virtual
//! thread (failed `assert!`s); the explorer catches them, aborts the
//! schedule, and reports the schedule descriptor so the failure can be
//! replayed.
//!
//! ## Contract for explored code
//!
//! * Share state between virtual threads only through the facade types
//!   (or immutable data). Plain mutexes are tolerated, but a lock must
//!   never be held **across** a facade operation — the baton may pass to
//!   a thread that then blocks on the real lock, deadlocking the run.
//!   (`SkewTracker::on_progress` publishes its floor *after* releasing
//!   its histogram lock for exactly this reason.)
//! * Bodies must be deterministic apart from scheduling: no wall-clock,
//!   no OS randomness.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe, Location};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// A thread's visibility view: for each cell id, the oldest history index
/// the thread may still legally read (raised by its own reads/writes —
/// coherence — and by acquire edges).
pub(crate) type View = HashMap<u64, usize>;

/// How many consecutive stale (non-latest) reads of one cell a thread may
/// perform before the model forces the latest value — the finite-time
/// visibility guarantee that keeps spin-wait loops terminating.
const STALE_STREAK_LIMIT: u32 = 4;

/// Fairness bound: after this many consecutive schedule points on one
/// virtual thread while others are runnable, the baton is *forced* to a
/// different thread. Without it, a spin loop (a monitor polling counters
/// another thread must advance) can hold the baton forever — in the
/// exhaustive mode's base schedule ("never switch") it *always* would,
/// burning the whole step budget before the writers run once. A forced
/// yield is not a preemption (the preemption bound measures adversarial
/// switches, not liveness ones) and is driven by deterministic state, so
/// replays stay exact.
const FAIR_LIMIT: usize = 32;

/// Hard cap on recorded events per run (the log is diagnostic, not a
/// trace of record).
const EVENT_CAP: usize = 1 << 16;

/// What kind of operation an [`Event`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// An atomic load (the epoch is the history index it read from).
    Load,
    /// An atomic store (the epoch is the new entry's index).
    Store,
    /// A successful read-modify-write (fetch-op or winning CAS).
    Rmw,
    /// A failed compare-exchange (reads the latest entry, writes nothing).
    CasFail,
    /// A fence (no cell; recorded for the audit trail only).
    Fence,
}

/// One recorded facade operation: the `(site, thread, ordering,
/// value-epoch)` tuple the instrumented runtime captures.
#[derive(Clone, Debug)]
pub struct Event {
    /// Source location of the facade call.
    pub site: &'static Location<'static>,
    /// Virtual thread that performed the operation.
    pub thread: usize,
    /// Operation kind.
    pub op: OpKind,
    /// The declared memory ordering.
    pub ordering: crate::Ordering,
    /// Cell identity (stable for the cell's lifetime).
    pub cell: u64,
    /// The history index ("value epoch") read from or written to.
    pub epoch: usize,
    /// The value read or written, as raw bits.
    pub value: u64,
}

/// Marker payload used to unwind virtual threads when a run aborts.
struct AbortMarker;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Waiting for the given virtual thread to finish.
    Blocked(usize),
    Finished,
}

enum Policy {
    Seeded(u64),
    Exhaustive {
        prefix: Vec<u32>,
        trace: Vec<(u32, u32)>,
        cursor: usize,
    },
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Policy {
    /// One scheduler decision with `n` alternatives; decisions with a
    /// single alternative are not recorded (no branching).
    fn choose(&mut self, n: u32) -> u32 {
        if n <= 1 {
            return 0;
        }
        match self {
            Policy::Seeded(s) => (splitmix(s) % n as u64) as u32,
            Policy::Exhaustive { prefix, trace, cursor } => {
                let c = if *cursor < prefix.len() { prefix[*cursor] } else { 0 };
                let c = c.min(n - 1);
                trace.push((c, n));
                *cursor += 1;
                c
            }
        }
    }

    fn is_exhaustive(&self) -> bool {
        matches!(self, Policy::Exhaustive { .. })
    }
}

pub(crate) struct EngState {
    policy: Policy,
    status: Vec<Status>,
    pub(crate) views: Vec<View>,
    final_views: Vec<Option<View>>,
    current: usize,
    abort: bool,
    violation: Option<String>,
    steps: usize,
    max_steps: usize,
    preemptions: usize,
    max_preemptions: Option<usize>,
    /// Fairness state: which thread took the most recent schedule points
    /// and how many in a row (forces a yield at [`FAIR_LIMIT`]).
    consec_thread: usize,
    consec_steps: usize,
    /// Per (thread, cell) count of consecutive stale reads, for the
    /// finite-visibility liveness rule.
    stale_streak: HashMap<(usize, u64), u32>,
    events: Vec<Event>,
}

impl EngState {
    /// Picks the history index a load returns, given the reader's
    /// coherence floor and the latest index. Applies the stale-streak
    /// liveness rule; in exhaustive mode only the two extremes are
    /// explored.
    pub(crate) fn choose_read_index(&mut self, thread: usize, cell: u64, floor: usize, last: usize) -> usize {
        if floor >= last {
            self.stale_streak.remove(&(thread, cell));
            return last;
        }
        let streak = self.stale_streak.entry((thread, cell)).or_insert(0);
        if *streak >= STALE_STREAK_LIMIT {
            *streak = 0;
            return last;
        }
        let idx = if self.policy.is_exhaustive() {
            // Explore the extremes only: freshest first (choice 0) so the
            // base schedule behaves sequentially-consistently.
            if self.policy.choose(2) == 0 {
                last
            } else {
                floor
            }
        } else {
            let span = (last - floor + 1) as u32;
            floor + self.policy.choose(span) as usize
        };
        if idx == last {
            self.stale_streak.remove(&(thread, cell));
        } else {
            *self.stale_streak.entry((thread, cell)).or_insert(0) += 1;
        }
        idx
    }

    pub(crate) fn record(&mut self, ev: Event) {
        if self.events.len() < EVENT_CAP {
            self.events.push(ev);
        }
    }

    /// Hands the baton to some runnable thread (policy choice). With no
    /// runnable thread left, flags a deadlock unless everything finished.
    fn pass_baton(&mut self) {
        let cands: Vec<usize> = (0..self.status.len())
            .filter(|&t| self.status[t] == Status::Runnable)
            .collect();
        if cands.is_empty() {
            if self.status.iter().any(|&s| s != Status::Finished) {
                self.violation.get_or_insert_with(|| {
                    "deadlock: every unfinished virtual thread is blocked on a join".to_string()
                });
                self.abort = true;
            }
            return;
        }
        let idx = self.policy.choose(cands.len() as u32) as usize;
        self.current = cands[idx];
        self.consec_thread = self.current;
        self.consec_steps = 0;
    }

    fn all_finished(&self) -> bool {
        self.status.iter().all(|&s| s == Status::Finished)
    }
}

pub(crate) struct Engine {
    state: Mutex<EngState>,
    cv: Condvar,
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Unique id of this run; cells lazily (re)initialise their history
    /// when they see a different run id, so a cell accidentally reused
    /// across runs cannot leak a stale history.
    pub(crate) run_id: u64,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Engine>, usize)>> = const { RefCell::new(None) };
}

/// The engine and virtual-thread index of the calling OS thread, if it is
/// currently executing inside an exploration.
pub(crate) fn current_ctx() -> Option<(Arc<Engine>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<(Arc<Engine>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

impl Engine {
    fn lock(&self) -> MutexGuard<'_, EngState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Blocks until virtual thread `me` holds the baton (or the run
    /// aborts, which unwinds).
    fn acquire(&self, me: usize) -> MutexGuard<'_, EngState> {
        let mut g = self.lock();
        loop {
            if g.abort {
                drop(g);
                panic::panic_any(AbortMarker);
            }
            if g.current == me {
                return g;
            }
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// The schedule point at the head of every facade operation: waits
    /// for the baton, makes one thread-choice decision (possibly handing
    /// the baton elsewhere first), and returns with the baton held so the
    /// caller can perform its operation atomically.
    pub(crate) fn reschedule(&self, me: usize) -> MutexGuard<'_, EngState> {
        let mut g = self.acquire(me);
        g.steps += 1;
        if g.steps > g.max_steps {
            let msg =
                format!("step budget ({}) exhausted — livelock or unbounded spin", g.max_steps);
            g.violation.get_or_insert(msg);
            g.abort = true;
            self.cv.notify_all();
            drop(g);
            panic::panic_any(AbortMarker);
        }
        if g.consec_thread == me {
            g.consec_steps += 1;
        } else {
            g.consec_thread = me;
            g.consec_steps = 1;
        }
        // Cyclic candidate order (me+1, me+2, …): decision 0 of a forced
        // yield rotates round-robin, so fairness alone cannot starve a
        // thread (two spinning threads would otherwise ping-pong the
        // baton between themselves forever, never reaching the third
        // one whose progress they spin on).
        let len = g.status.len();
        let others: Vec<usize> = (1..len)
            .map(|off| (me + off) % len)
            .filter(|&t| g.status[t] == Status::Runnable)
            .collect();
        // Fairness: past FAIR_LIMIT consecutive operations the baton MUST
        // move (see the constant's doc); such a switch is free of the
        // preemption bound. Otherwise candidates are current-thread-first
        // so decision 0 = "no switch".
        let forced_yield = g.consec_steps >= FAIR_LIMIT && !others.is_empty();
        let cands = if forced_yield {
            others
        } else {
            let mut c = vec![me];
            c.extend(others);
            c
        };
        let mut n = cands.len();
        if !forced_yield {
            if let Some(bound) = g.max_preemptions {
                if g.preemptions >= bound {
                    n = 1;
                }
            }
        }
        let idx = g.policy.choose(n as u32) as usize;
        let next = cands[idx];
        if next != me {
            if !forced_yield {
                g.preemptions += 1;
            }
            g.consec_thread = next;
            g.consec_steps = 0;
            g.current = next;
            self.cv.notify_all();
            loop {
                if g.abort {
                    drop(g);
                    panic::panic_any(AbortMarker);
                }
                if g.current == me {
                    break;
                }
                g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
            }
        }
        g
    }

    /// Marks `me` finished, publishes its final view, wakes joiners, and
    /// hands the baton on.
    fn retire(&self, me: usize, panicked: Option<String>) {
        let mut g = self.lock();
        let view = std::mem::take(&mut g.views[me]);
        g.final_views[me] = Some(view);
        g.status[me] = Status::Finished;
        for t in 0..g.status.len() {
            if g.status[t] == Status::Blocked(me) {
                g.status[t] = Status::Runnable;
            }
        }
        if let Some(msg) = panicked {
            g.violation.get_or_insert(msg);
            g.abort = true;
        } else if !g.abort && g.current == me {
            g.pass_baton();
        }
        self.cv.notify_all();
    }
}

/// Handle to a virtual thread created by [`spawn`].
pub struct JoinHandle {
    idx: usize,
}

impl JoinHandle {
    /// Blocks the calling virtual thread until the target finishes, then
    /// merges the target's final visibility view into the caller's (the
    /// happens-before edge a real `join` provides).
    pub fn join(self) {
        let (eng, me) = current_ctx().expect("JoinHandle::join outside a model exploration");
        let mut g = eng.acquire(me);
        if g.status[self.idx] != Status::Finished {
            g.status[me] = Status::Blocked(self.idx);
            g.pass_baton();
            eng.cv.notify_all();
            loop {
                if g.abort {
                    drop(g);
                    panic::panic_any(AbortMarker);
                }
                if g.current == me && g.status[me] == Status::Runnable {
                    break;
                }
                g = eng.cv.wait(g).unwrap_or_else(|p| p.into_inner());
            }
        }
        let fv = g.final_views[self.idx].clone().unwrap_or_default();
        let mine = &mut g.views[me];
        for (cell, floor) in fv {
            let e = mine.entry(cell).or_insert(0);
            *e = (*e).max(floor);
        }
    }
}

/// Spawns a virtual thread inside an exploration. The closure starts
/// executing only when the scheduler first hands it the baton; it
/// inherits the spawner's visibility view (the happens-before edge a real
/// `spawn` provides). Must be called from inside an exploration body.
pub fn spawn(f: impl FnOnce() + Send + 'static) -> JoinHandle {
    let (eng, me) = current_ctx().expect("abr_sync::model::spawn outside a model exploration");
    let idx;
    {
        let mut g = eng.acquire(me);
        idx = g.status.len();
        g.status.push(Status::Runnable);
        let parent_view = g.views[me].clone();
        g.views.push(parent_view);
        g.final_views.push(None);
    }
    let eng2 = Arc::clone(&eng);
    let handle = std::thread::Builder::new()
        .name(format!("vthread-{idx}"))
        .spawn(move || {
            set_ctx(Some((Arc::clone(&eng2), idx)));
            let eng3 = Arc::clone(&eng2);
            // The startup wait must sit inside the catch_unwind: a run
            // that aborts before this thread is ever scheduled unwinds
            // the wait with the abort marker, and `retire` below must
            // still run or the exploration waits on this vthread forever.
            let r = panic::catch_unwind(AssertUnwindSafe(move || {
                // Do not run a single user instruction until scheduled:
                // all virtual-thread code executes strictly under the
                // baton.
                drop(eng3.acquire(idx));
                f()
            }));
            set_ctx(None);
            eng2.retire(idx, panic_message(r));
        })
        .expect("failed to spawn a model virtual thread");
    eng.os_handles.lock().unwrap_or_else(|p| p.into_inner()).push(handle);
    JoinHandle { idx }
}

/// Extracts a violation message from a caught panic; `None` for clean
/// exits and for the internal abort marker.
fn panic_message(r: Result<(), Box<dyn std::any::Any + Send>>) -> Option<String> {
    match r {
        Ok(()) => None,
        Err(p) => {
            if p.downcast_ref::<AbortMarker>().is_some() {
                None
            } else if let Some(s) = p.downcast_ref::<&'static str>() {
                Some((*s).to_string())
            } else if let Some(s) = p.downcast_ref::<String>() {
                Some(s.clone())
            } else {
                Some("virtual thread panicked with a non-string payload".to_string())
            }
        }
    }
}

/// Tuning knobs shared by both exploration modes.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Abort a schedule after this many facade operations (livelock
    /// guard).
    pub max_steps: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions { max_steps: 200_000 }
    }
}

/// A schedule under which the body's invariants failed.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Replayable descriptor: `seed N` or the exhaustive decision prefix.
    pub schedule: String,
    /// The panic message of the failed assertion.
    pub message: String,
}

/// What an exploration found.
#[derive(Debug)]
pub struct Outcome {
    /// Schedules executed.
    pub schedules: usize,
    /// Exhaustive mode only: whether the whole (bounded) decision tree
    /// was enumerated within the schedule cap. Always `true` for seeded
    /// runs that completed their seed count.
    pub complete: bool,
    /// The first violation found, if any (exploration stops at it).
    pub violation: Option<Violation>,
    /// Event log of the violating run (or of the last run when clean).
    pub events: Vec<Event>,
}

impl Outcome {
    /// Panics with the schedule descriptor if any schedule violated.
    pub fn assert_ok(&self) {
        if let Some(v) = &self.violation {
            panic!(
                "model violation under {} (after {} schedules): {}",
                v.schedule, self.schedules, v.message
            );
        }
    }

    /// Asserts that the exploration *did* catch a violation — used to
    /// prove the model can see a bug before trusting it on the fix.
    pub fn assert_violation(&self) -> &Violation {
        self.violation
            .as_ref()
            .expect("expected the model to catch a violation, but every schedule passed")
    }
}

static NEXT_RUN_ID: AtomicU64 = AtomicU64::new(1);

struct RunResult {
    violation: Option<String>,
    events: Vec<Event>,
    trace: Vec<(u32, u32)>,
}

fn run_once(
    policy: Policy,
    max_preemptions: Option<usize>,
    opts: &ExploreOptions,
    body: &(dyn Fn() + Sync),
) -> RunResult {
    let eng = Arc::new(Engine {
        state: Mutex::new(EngState {
            policy,
            status: vec![Status::Runnable],
            views: vec![View::new()],
            final_views: vec![None],
            current: 0,
            abort: false,
            violation: None,
            steps: 0,
            max_steps: opts.max_steps,
            preemptions: 0,
            max_preemptions,
            consec_thread: 0,
            consec_steps: 0,
            stale_streak: HashMap::new(),
            events: Vec::new(),
        }),
        cv: Condvar::new(),
        os_handles: Mutex::new(Vec::new()),
        // sync: plain unique-id dispensing; no cross-thread protocol
        // hangs off the counter value.
        run_id: NEXT_RUN_ID.fetch_add(1, crate::Ordering::Relaxed),
    });

    set_ctx(Some((Arc::clone(&eng), 0)));
    let body_result = panic::catch_unwind(AssertUnwindSafe(body));
    set_ctx(None);
    eng.retire(0, panic_message(body_result));

    // Wait for every virtual thread to wind down (normally or via the
    // abort marker), then join the backing OS threads.
    {
        let mut g = eng.lock();
        while !g.all_finished() {
            g = eng.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }
    let handles = std::mem::take(&mut *eng.os_handles.lock().unwrap_or_else(|p| p.into_inner()));
    for h in handles {
        let _ = h.join();
    }

    let mut g = eng.lock();
    RunResult {
        violation: g.violation.take(),
        events: std::mem::take(&mut g.events),
        trace: match &mut g.policy {
            Policy::Exhaustive { trace, .. } => std::mem::take(trace),
            Policy::Seeded(_) => Vec::new(),
        },
    }
}

/// Runs `body` under `runs` seeded schedules (seeds `base_seed..`),
/// stopping at the first violation.
pub fn explore_seeded(base_seed: u64, runs: usize, body: impl Fn() + Sync) -> Outcome {
    let opts = ExploreOptions::default();
    let mut last_events = Vec::new();
    for i in 0..runs {
        let seed = base_seed.wrapping_add(i as u64);
        let r = run_once(Policy::Seeded(seed), None, &opts, &body);
        if let Some(message) = r.violation {
            return Outcome {
                schedules: i + 1,
                complete: false,
                violation: Some(Violation { schedule: format!("seed {seed}"), message }),
                events: r.events,
            };
        }
        last_events = r.events;
    }
    Outcome { schedules: runs, complete: true, violation: None, events: last_events }
}

/// Enumerates every schedule of `body` with at most `max_preemptions`
/// preemptions (and stale reads capped to the oldest-visible/latest
/// extremes), depth-first, up to `max_schedules` runs. Practical for 2–3
/// virtual threads with a handful of operations each — the
/// bounded-preemption analogue of CHESS-style systematic testing.
pub fn explore_exhaustive(
    max_preemptions: usize,
    max_schedules: usize,
    body: impl Fn() + Sync,
) -> Outcome {
    let opts = ExploreOptions::default();
    let mut prefix: Vec<u32> = Vec::new();
    let mut schedules = 0usize;
    let mut last_events;
    loop {
        let policy = Policy::Exhaustive { prefix: prefix.clone(), trace: Vec::new(), cursor: 0 };
        let r = run_once(policy, Some(max_preemptions), &opts, &body);
        schedules += 1;
        if let Some(message) = r.violation {
            let shown = 40.min(r.trace.len());
            let schedule = format!(
                "decision prefix {:?}{}",
                &r.trace[..shown],
                if r.trace.len() > shown {
                    format!(" … ({} decisions total)", r.trace.len())
                } else {
                    String::new()
                }
            );
            return Outcome {
                schedules,
                complete: false,
                violation: Some(Violation { schedule, message }),
                events: r.events,
            };
        }
        last_events = r.events;
        // Backtrack: bump the deepest decision that still has an
        // unexplored alternative.
        let mut next_prefix = None;
        for i in (0..r.trace.len()).rev() {
            let (chosen, n) = r.trace[i];
            if chosen + 1 < n {
                let mut p: Vec<u32> = r.trace[..i].iter().map(|&(c, _)| c).collect();
                p.push(chosen + 1);
                next_prefix = Some(p);
                break;
            }
        }
        match next_prefix {
            None => {
                return Outcome { schedules, complete: true, violation: None, events: last_events }
            }
            Some(p) => prefix = p,
        }
        if schedules >= max_schedules {
            return Outcome { schedules, complete: false, violation: None, events: last_events };
        }
    }
}
