//! Per-cell weak-memory state and the operation semantics shared by all
//! facade types (which store their payloads as `u64` bits).
//!
//! Outside an exploration context every operation falls through to the
//! backing `std` atomic, so model-feature builds behave exactly like
//! passthrough builds for ordinary tests. Inside an exploration, every
//! operation is a schedule point: it waits for the scheduler baton,
//! lets the policy pick the next runnable virtual thread (and, for
//! loads, the history entry to read), applies the view/history rules
//! documented on the crate root, records an [`Event`](super::rt::Event),
//! and mirrors the latest value into the backing atomic.

use super::rt::{self, Event, OpKind};
use crate::Ordering;
use std::panic::Location;
use std::sync::atomic::AtomicU64;
use std::sync::{Mutex, OnceLock};

/// One entry in a cell's modification order.
struct Entry {
    value: u64,
    /// The writer's view snapshot for release writes (what an acquire
    /// read of this entry synchronizes with); `None` for relaxed writes.
    view: Option<rt::View>,
}

struct Hist {
    /// Which exploration run this history belongs to; a mismatch means
    /// the cell outlived a previous run and must be re-seeded from the
    /// real value.
    run_id: u64,
    entries: Vec<Entry>,
}

/// Global dispenser of stable cell identities.
static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(1);

/// The shared state behind every facade type in model builds.
pub(crate) struct ModelCell {
    /// Always mirrors the latest history entry, and is the sole storage
    /// outside explorations (passthrough behaviour).
    real: AtomicU64,
    id: OnceLock<u64>,
    hist: Mutex<Option<Hist>>,
}

impl std::fmt::Debug for ModelCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // sync: debug printing only; the freshest mirrored value is all
        // we want and no ordering with other cells is implied.
        f.debug_struct("ModelCell").field("value", &self.real.load(Ordering::Relaxed)).finish()
    }
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn merge_view(into: &mut rt::View, from: &rt::View) {
    for (&cell, &floor) in from {
        let e = into.entry(cell).or_insert(0);
        *e = (*e).max(floor);
    }
}

impl ModelCell {
    pub(crate) fn new(bits: u64) -> Self {
        ModelCell { real: AtomicU64::new(bits), id: OnceLock::new(), hist: Mutex::new(None) }
    }

    fn id(&self) -> u64 {
        // sync: unique-id dispensing only; the id value carries no
        // cross-thread protocol.
        *self.id.get_or_init(|| NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// Runs `f` with this cell's history for the current run (seeding or
    /// re-seeding it from the mirrored value when absent or left over
    /// from an earlier run).
    fn with_hist<R>(&self, run_id: u64, f: impl FnOnce(&mut Hist) -> R) -> R {
        let mut slot = self.hist.lock().unwrap_or_else(|p| p.into_inner());
        let need_init = match slot.as_ref() {
            Some(h) => h.run_id != run_id,
            None => true,
        };
        if need_init {
            // sync: seeding the model history; the mirror is only ever
            // written under the scheduler baton or pre-exploration.
            let seed = self.real.load(Ordering::Relaxed);
            *slot = Some(Hist { run_id, entries: vec![Entry { value: seed, view: None }] });
        }
        f(slot.as_mut().expect("history just seeded"))
    }

    /// The happens-before shadow key of this cell: its address, matching
    /// what `hb::id_of` computes on the facade wrapper (a single-field
    /// struct, so the addresses coincide).
    fn hb_id(&self) -> usize {
        self as *const ModelCell as usize
    }

    pub(crate) fn load(&self, ord: Ordering, site: &'static Location<'static>) -> u64 {
        let Some((eng, me)) = rt::current_ctx() else {
            let v = self.real.load(ord);
            if is_acquire(ord) {
                crate::hb::on_acquire(self.hb_id());
            }
            return v;
        };
        let id = self.id();
        let mut g = eng.reschedule(me);
        self.with_hist(eng.run_id, |h| {
            let last = h.entries.len() - 1;
            // Clamp: a floor can exceed the history length after a
            // `set_exclusive` reset re-seeded the cell.
            let floor = g.views[me].get(&id).copied().unwrap_or(0).min(last);
            let idx = g.choose_read_index(me, id, floor, last);
            let entry = &h.entries[idx];
            // Coherence: this thread never travels back before `idx`.
            g.views[me].insert(id, idx);
            if is_acquire(ord) {
                if let Some(v) = entry.view.clone() {
                    merge_view(&mut g.views[me], &v);
                    // The load really synchronized with a release write:
                    // mirror the exact edge into the hb shadow. An
                    // acquire of a relaxed-written entry adds no edge.
                    crate::hb::on_acquire(self.hb_id());
                }
            }
            let value = entry.value;
            g.record(Event { site, thread: me, op: OpKind::Load, ordering: ord, cell: id, epoch: idx, value });
            value
        })
    }

    pub(crate) fn store(&self, bits: u64, ord: Ordering, site: &'static Location<'static>) {
        let Some((eng, me)) = rt::current_ctx() else {
            if is_release(ord) {
                crate::hb::on_release(self.hb_id());
            }
            self.real.store(bits, ord);
            return;
        };
        let id = self.id();
        let mut g = eng.reschedule(me);
        if is_release(ord) {
            crate::hb::on_release(self.hb_id());
        }
        self.with_hist(eng.run_id, |h| {
            let idx = h.entries.len();
            g.views[me].insert(id, idx);
            let view = if is_release(ord) { Some(g.views[me].clone()) } else { None };
            h.entries.push(Entry { value: bits, view });
            // sync: mirror write under the scheduler baton; ordering is
            // modelled by the history, not by the mirror.
            self.real.store(bits, Ordering::Relaxed);
            g.record(Event { site, thread: me, op: OpKind::Store, ordering: ord, cell: id, epoch: idx, value: bits });
        })
    }

    /// Shared read-modify-write core. `f` maps the current value to
    /// `Some(new)` (commit) or `None` (fail, as in a compare-exchange
    /// mismatch). Returns `Ok(previous)`/`Err(latest)` like std's CAS.
    /// RMWs always read the modification-order tail, and a committed
    /// write carries forward the release view of the entry it displaces
    /// (release sequences survive intervening RMWs).
    pub(crate) fn rmw(
        &self,
        success: Ordering,
        failure: Ordering,
        site: &'static Location<'static>,
        real_op: impl FnOnce(&AtomicU64) -> Result<u64, u64>,
        f: impl FnOnce(u64) -> Option<u64>,
    ) -> Result<u64, u64> {
        let Some((eng, me)) = rt::current_ctx() else {
            if is_release(success) {
                crate::hb::on_release(self.hb_id());
            }
            let r = real_op(&self.real);
            match &r {
                Ok(_) if is_acquire(success) => crate::hb::on_acquire(self.hb_id()),
                Err(_) if is_acquire(failure) => crate::hb::on_acquire(self.hb_id()),
                _ => {}
            }
            return r;
        };
        let id = self.id();
        let mut g = eng.reschedule(me);
        self.with_hist(eng.run_id, |h| {
            let last = h.entries.len() - 1;
            let old = h.entries[last].value;
            match f(old) {
                Some(new) => {
                    if is_acquire(success) {
                        if let Some(v) = h.entries[last].view.clone() {
                            merge_view(&mut g.views[me], &v);
                            // Exact synchronizes-with edge (the RMW read
                            // the release entry it displaces).
                            crate::hb::on_acquire(self.hb_id());
                        }
                    }
                    let idx = h.entries.len();
                    g.views[me].insert(id, idx);
                    let mut carried = h.entries[last].view.clone();
                    if is_release(success) {
                        crate::hb::on_release(self.hb_id());
                        let mut v = g.views[me].clone();
                        if let Some(prev) = &carried {
                            merge_view(&mut v, prev);
                        }
                        carried = Some(v);
                    }
                    h.entries.push(Entry { value: new, view: carried });
                    // sync: mirror write under the scheduler baton.
                    self.real.store(new, Ordering::Relaxed);
                    g.record(Event { site, thread: me, op: OpKind::Rmw, ordering: success, cell: id, epoch: idx, value: new });
                    Ok(old)
                }
                None => {
                    // A failed CAS still reads the latest entry.
                    g.views[me].insert(id, last);
                    if is_acquire(failure) {
                        if let Some(v) = h.entries[last].view.clone() {
                            merge_view(&mut g.views[me], &v);
                            crate::hb::on_acquire(self.hb_id());
                        }
                    }
                    g.record(Event { site, thread: me, op: OpKind::CasFail, ordering: failure, cell: id, epoch: last, value: old });
                    Err(old)
                }
            }
        })
    }

    /// Non-atomic reset through an exclusive borrow: drops the recorded
    /// history entirely (the borrow checker proves no concurrent
    /// readers, so there is no modification order to preserve). The next
    /// operation re-seeds a fresh single-entry history from this value;
    /// stale per-thread floors are clamped on read.
    pub(crate) fn set_exclusive(&mut self, bits: u64) {
        crate::hb::on_reset(self.hb_id());
        *self.real.get_mut() = bits;
        *self.hist.get_mut().unwrap_or_else(|p| p.into_inner()) = None;
    }

}

/// Model-mode fence: a schedule point recorded in the event log. No
/// visibility edges are added — no protocol in this workspace relies on
/// a fence, and a fence-free model is strictly more adversarial.
#[track_caller]
pub(crate) fn fence_impl(ord: Ordering) {
    let site = Location::caller();
    if let Some((eng, me)) = rt::current_ctx() {
        let mut g = eng.reschedule(me);
        g.record(Event { site, thread: me, op: OpKind::Fence, ordering: ord, cell: 0, epoch: 0, value: 0 });
    } else {
        std::sync::atomic::fence(ord);
    }
}
