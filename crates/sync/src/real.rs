//! The passthrough facade: every method is an `#[inline]` delegation to
//! the corresponding `std::sync::atomic` operation, so normal builds pay
//! nothing for routing their atomics through `abr_sync`.
//!
//! Under `--features sanitize` the same passthrough additionally drives
//! the happens-before shadow state in [`crate::hb`]: release-flavoured
//! operations run their hook *before* the real op and acquire-flavoured
//! ones *after*, so a real load that observed a release implies the
//! release hook already ran — the shadow never claims an edge the
//! hardware had not yet made observable. When no `hb::session` is
//! active every hook is a single relaxed flag load.

use crate::Ordering;
use std::sync::atomic::{self, AtomicBool, AtomicU64, AtomicUsize};

#[cfg(feature = "sanitize")]
#[inline]
fn hook_acquire<T>(cell: &T, ord: Ordering) {
    if matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
        crate::hb::on_acquire(crate::hb::id_of(cell));
    }
}

#[cfg(not(feature = "sanitize"))]
#[inline(always)]
fn hook_acquire<T>(_cell: &T, _ord: Ordering) {}

#[cfg(feature = "sanitize")]
#[inline]
fn hook_release<T>(cell: &T, ord: Ordering) {
    if matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst) {
        crate::hb::on_release(crate::hb::id_of(cell));
    }
}

#[cfg(not(feature = "sanitize"))]
#[inline(always)]
fn hook_release<T>(_cell: &T, _ord: Ordering) {}

#[cfg(feature = "sanitize")]
#[inline]
fn hook_reset<T>(cell: &T) {
    crate::hb::on_reset(crate::hb::id_of(cell));
}

#[cfg(not(feature = "sanitize"))]
#[inline(always)]
fn hook_reset<T>(_cell: &T) {}

/// An atomic memory fence (passthrough to `std::sync::atomic::fence`).
#[inline]
pub fn fence(ord: Ordering) {
    atomic::fence(ord);
}

/// Facade over `AtomicBool`.
#[derive(Debug, Default)]
pub struct SyncBool {
    inner: AtomicBool,
}

impl SyncBool {
    /// A new cell holding `v`.
    #[inline]
    pub fn new(v: bool) -> Self {
        SyncBool { inner: AtomicBool::new(v) }
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, ord: Ordering) -> bool {
        let v = self.inner.load(ord);
        hook_acquire(self, ord);
        v
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: bool, ord: Ordering) {
        hook_release(self, ord);
        self.inner.store(v, ord)
    }

    /// Atomic compare-and-exchange.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        hook_release(self, success);
        let r = self.inner.compare_exchange(current, new, success, failure);
        match &r {
            Ok(_) => hook_acquire(self, success),
            Err(_) => hook_acquire(self, failure),
        }
        r
    }

    /// Atomic compare-and-exchange, allowed to fail spuriously.
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        hook_release(self, success);
        let r = self.inner.compare_exchange_weak(current, new, success, failure);
        match &r {
            Ok(_) => hook_acquire(self, success),
            Err(_) => hook_acquire(self, failure),
        }
        r
    }

    /// Non-atomic store through an exclusive borrow (no atomic traffic;
    /// the borrow checker proves there are no concurrent readers).
    #[inline]
    pub fn set_exclusive(&mut self, v: bool) {
        hook_reset(&*self);
        *self.inner.get_mut() = v;
    }
}

/// Facade over `AtomicU64`.
#[derive(Debug, Default)]
pub struct SyncU64 {
    inner: AtomicU64,
}

impl SyncU64 {
    /// A new cell holding `v`.
    #[inline]
    pub fn new(v: u64) -> Self {
        SyncU64 { inner: AtomicU64::new(v) }
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, ord: Ordering) -> u64 {
        let v = self.inner.load(ord);
        hook_acquire(self, ord);
        v
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: u64, ord: Ordering) {
        hook_release(self, ord);
        self.inner.store(v, ord)
    }

    /// Atomic add; returns the previous value.
    #[inline]
    pub fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
        hook_release(self, ord);
        let prev = self.inner.fetch_add(v, ord);
        hook_acquire(self, ord);
        prev
    }

    /// Atomic maximum; returns the previous value.
    #[inline]
    pub fn fetch_max(&self, v: u64, ord: Ordering) -> u64 {
        hook_release(self, ord);
        let prev = self.inner.fetch_max(v, ord);
        hook_acquire(self, ord);
        prev
    }

    /// Atomic compare-and-exchange.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        hook_release(self, success);
        let r = self.inner.compare_exchange(current, new, success, failure);
        match &r {
            Ok(_) => hook_acquire(self, success),
            Err(_) => hook_acquire(self, failure),
        }
        r
    }

    /// Non-atomic store through an exclusive borrow.
    #[inline]
    pub fn set_exclusive(&mut self, v: u64) {
        hook_reset(&*self);
        *self.inner.get_mut() = v;
    }
}

/// Facade over `AtomicUsize`.
#[derive(Debug, Default)]
pub struct SyncUsize {
    inner: AtomicUsize,
}

impl SyncUsize {
    /// A new cell holding `v`.
    #[inline]
    pub fn new(v: usize) -> Self {
        SyncUsize { inner: AtomicUsize::new(v) }
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, ord: Ordering) -> usize {
        let v = self.inner.load(ord);
        hook_acquire(self, ord);
        v
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: usize, ord: Ordering) {
        hook_release(self, ord);
        self.inner.store(v, ord)
    }

    /// Atomic add; returns the previous value.
    #[inline]
    pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
        hook_release(self, ord);
        let prev = self.inner.fetch_add(v, ord);
        hook_acquire(self, ord);
        prev
    }

    /// Atomic subtract; returns the previous value.
    #[inline]
    pub fn fetch_sub(&self, v: usize, ord: Ordering) -> usize {
        hook_release(self, ord);
        let prev = self.inner.fetch_sub(v, ord);
        hook_acquire(self, ord);
        prev
    }

    /// Atomic maximum; returns the previous value.
    #[inline]
    pub fn fetch_max(&self, v: usize, ord: Ordering) -> usize {
        hook_release(self, ord);
        let prev = self.inner.fetch_max(v, ord);
        hook_acquire(self, ord);
        prev
    }

    /// Atomic compare-and-exchange.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        hook_release(self, success);
        let r = self.inner.compare_exchange(current, new, success, failure);
        match &r {
            Ok(_) => hook_acquire(self, success),
            Err(_) => hook_acquire(self, failure),
        }
        r
    }

    /// Atomic compare-and-exchange, allowed to fail spuriously.
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        hook_release(self, success);
        let r = self.inner.compare_exchange_weak(current, new, success, failure);
        match &r {
            Ok(_) => hook_acquire(self, success),
            Err(_) => hook_acquire(self, failure),
        }
        r
    }

    /// Non-atomic store through an exclusive borrow.
    #[inline]
    pub fn set_exclusive(&mut self, v: usize) {
        hook_reset(&*self);
        *self.inner.get_mut() = v;
    }
}
