//! The passthrough facade: every method is an `#[inline]` delegation to
//! the corresponding `std::sync::atomic` operation, so normal builds pay
//! nothing for routing their atomics through `abr_sync`.

use crate::Ordering;
use std::sync::atomic::{self, AtomicBool, AtomicU64, AtomicUsize};

/// An atomic memory fence (passthrough to `std::sync::atomic::fence`).
#[inline]
pub fn fence(ord: Ordering) {
    atomic::fence(ord);
}

/// Facade over `AtomicBool`.
#[derive(Debug, Default)]
pub struct SyncBool {
    inner: AtomicBool,
}

impl SyncBool {
    /// A new cell holding `v`.
    #[inline]
    pub fn new(v: bool) -> Self {
        SyncBool { inner: AtomicBool::new(v) }
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, ord: Ordering) -> bool {
        self.inner.load(ord)
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: bool, ord: Ordering) {
        self.inner.store(v, ord)
    }

    /// Atomic compare-and-exchange.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.inner.compare_exchange(current, new, success, failure)
    }

    /// Atomic compare-and-exchange, allowed to fail spuriously.
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.inner.compare_exchange_weak(current, new, success, failure)
    }

    /// Non-atomic store through an exclusive borrow (no atomic traffic;
    /// the borrow checker proves there are no concurrent readers).
    #[inline]
    pub fn set_exclusive(&mut self, v: bool) {
        *self.inner.get_mut() = v;
    }
}

/// Facade over `AtomicU64`.
#[derive(Debug, Default)]
pub struct SyncU64 {
    inner: AtomicU64,
}

impl SyncU64 {
    /// A new cell holding `v`.
    #[inline]
    pub fn new(v: u64) -> Self {
        SyncU64 { inner: AtomicU64::new(v) }
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, ord: Ordering) -> u64 {
        self.inner.load(ord)
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: u64, ord: Ordering) {
        self.inner.store(v, ord)
    }

    /// Atomic add; returns the previous value.
    #[inline]
    pub fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
        self.inner.fetch_add(v, ord)
    }

    /// Atomic maximum; returns the previous value.
    #[inline]
    pub fn fetch_max(&self, v: u64, ord: Ordering) -> u64 {
        self.inner.fetch_max(v, ord)
    }

    /// Atomic compare-and-exchange.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.inner.compare_exchange(current, new, success, failure)
    }

    /// Non-atomic store through an exclusive borrow.
    #[inline]
    pub fn set_exclusive(&mut self, v: u64) {
        *self.inner.get_mut() = v;
    }
}

/// Facade over `AtomicUsize`.
#[derive(Debug, Default)]
pub struct SyncUsize {
    inner: AtomicUsize,
}

impl SyncUsize {
    /// A new cell holding `v`.
    #[inline]
    pub fn new(v: usize) -> Self {
        SyncUsize { inner: AtomicUsize::new(v) }
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, ord: Ordering) -> usize {
        self.inner.load(ord)
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: usize, ord: Ordering) {
        self.inner.store(v, ord)
    }

    /// Atomic add; returns the previous value.
    #[inline]
    pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
        self.inner.fetch_add(v, ord)
    }

    /// Atomic subtract; returns the previous value.
    #[inline]
    pub fn fetch_sub(&self, v: usize, ord: Ordering) -> usize {
        self.inner.fetch_sub(v, ord)
    }

    /// Atomic maximum; returns the previous value.
    #[inline]
    pub fn fetch_max(&self, v: usize, ord: Ordering) -> usize {
        self.inner.fetch_max(v, ord)
    }

    /// Atomic compare-and-exchange.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        self.inner.compare_exchange(current, new, success, failure)
    }

    /// Atomic compare-and-exchange, allowed to fail spuriously.
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        self.inner.compare_exchange_weak(current, new, success, failure)
    }

    /// Non-atomic store through an exclusive borrow.
    #[inline]
    pub fn set_exclusive(&mut self, v: usize) {
        *self.inner.get_mut() = v;
    }
}
