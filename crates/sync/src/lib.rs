#![warn(missing_docs)]

//! # abr-sync
//!
//! The workspace's **audited atomics facade**. Every shared-memory
//! atomic the solvers use goes through the three types here —
//! [`SyncBool`], [`SyncU64`], [`SyncUsize`] — instead of
//! `std::sync::atomic` directly (a lint, `tests/lint_sync.rs` at the
//! workspace root, enforces this). The point is to make the memory-model
//! assumptions of the block-asynchronous method *machine-checkable*:
//!
//! * In **normal builds** the facade is a zero-cost `#[inline]`
//!   passthrough to the std atomics — the release binary is bit-for-bit
//!   the code you would have written by hand.
//! * Under the **`model` cargo feature** every load/store/CAS/fetch-op is
//!   routed through an instrumented runtime that records
//!   `(site, thread, ordering, value-epoch)` events and — inside a
//!   [`model::explore_seeded`]/[`model::explore_exhaustive`] run — drives
//!   *virtual threads* with a deterministic scheduler over a weak-memory
//!   model: per-cell value histories, per-thread visibility views,
//!   `Release`/`Acquire` happens-before edges, and adversarially stale
//!   `Relaxed` reads. The paper's entire claim is that the iteration
//!   tolerates stale reads (the bounded shift function of Eq. 3); the
//!   model runtime is what lets tests distinguish "`Relaxed` because the
//!   algorithm tolerates staleness" from "`Relaxed` by accident".
//! * Under the **`sanitize` cargo feature** the passthrough stays in
//!   place, but every operation additionally drives the [`hb`]
//!   happens-before shadow state (per-thread vector clocks, per-cell
//!   release clocks) — the runtime half of the data-plane race
//!   sanitizer. The `model` build drives the same shadow from the
//!   explorer's virtual threads with *exact* synchronizes-with
//!   information. See [`hb`] for the full story.
//!
//! ## The weak-memory model (model builds)
//!
//! Inside an exploration, each cell keeps its full modification order as
//! a history of `(value, optional release-view)` entries, and each
//! virtual thread keeps a *view*: for every cell, the oldest history
//! index it may still legally read. The rules:
//!
//! * A `Relaxed` load may return **any** entry from the thread's view
//!   floor up to the latest — the scheduler picks, adversarially. Reading
//!   an entry raises the floor to it (per-thread coherence: a thread
//!   never travels back in time on one cell).
//! * A `Release` store snapshots the writer's view into the entry; an
//!   `Acquire` load that reads such an entry merges that snapshot into
//!   the reader's view (synchronizes-with). RMWs always read the
//!   **latest** entry (modification-order tail) and carry the release
//!   view of the entry they displace, so release sequences headed by a
//!   release store survive intervening RMWs.
//! * Liveness: after a bounded streak of stale reads of one cell the
//!   scheduler forces the latest value, modelling the "writes become
//!   visible in finite time" guarantee real coherent hardware gives —
//!   spin-wait loops terminate instead of reading a stale flag forever.
//! * Fences are recorded as events but add no edges (no protocol in this
//!   workspace relies on a fence; the model is *more* adversarial than
//!   the hardware here, never less).
//! * `compare_exchange_weak` never fails spuriously in the model (the
//!   spurious failure is a strict subset of the CAS-failure behaviour
//!   already explored).
//!
//! Outside an exploration (ordinary tests compiled with `--features
//! model`), the facade behaves exactly like the passthrough build.

pub use std::sync::atomic::Ordering;

#[cfg(any(feature = "model", feature = "sanitize"))]
pub mod hb;

#[cfg(not(feature = "model"))]
mod real;
#[cfg(not(feature = "model"))]
pub use real::{fence, SyncBool, SyncU64, SyncUsize};

#[cfg(feature = "model")]
mod model_impl;
#[cfg(feature = "model")]
pub use model_impl::{fence, SyncBool, SyncU64, SyncUsize};

/// The deterministic schedule explorer (model builds only): seeded and
/// bounded-preemption-exhaustive exploration of virtual-thread
/// interleavings over the facade's weak-memory model.
#[cfg(feature = "model")]
pub mod model {
    pub use crate::model_impl::rt::{
        explore_exhaustive, explore_seeded, spawn, Event, ExploreOptions, JoinHandle, OpKind,
        Outcome, Violation,
    };
}
