//! Semantics tests for the instrumented weak-memory runtime itself:
//! before trusting the model to audit the solver protocols, prove it
//! exhibits the behaviours it claims to (adversarial staleness under
//! `Relaxed`), forbids the ones the C++11/Rust model forbids
//! (release/acquire message passing, per-cell coherence, single-winner
//! CAS), and terminates (stale-streak liveness, step budget).
//!
//! Compiled only under the `model` feature; `cargo test -p abr-sync
//! --features model`.
#![cfg(feature = "model")]

use abr_sync::model::{explore_exhaustive, explore_seeded, spawn, OpKind};
use abr_sync::{Ordering, SyncBool, SyncUsize};
use std::sync::Arc;

/// `Relaxed` message passing is broken somewhere in the explored
/// schedules: the reader can see the flag without seeing the data. This
/// is the model's core reason to exist — it must be able to *catch* the
/// bug class the facade's `// sync:` comments claim to rule out.
#[test]
fn relaxed_message_passing_is_caught() {
    let outcome = explore_seeded(0xA51C, 400, || {
        let data = Arc::new(SyncUsize::new(0));
        let flag = Arc::new(SyncBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let writer = spawn(move || {
            d2.store(42, Ordering::Relaxed); // sync: test fixture — intentionally unordered
            f2.store(true, Ordering::Relaxed); // sync: test fixture — intentionally unordered
        });
        if flag.load(Ordering::Relaxed) {
            // sync: test fixture — intentionally unordered
            assert_eq!(data.load(Ordering::Relaxed), 42, "flag visible but data stale");
            // sync: ^ test fixture — the stale read is the point
        }
        writer.join();
    });
    let v = outcome.assert_violation();
    assert!(v.message.contains("data stale"), "unexpected violation: {}", v.message);
}

/// The same shape with a `Release` store / `Acquire` load pair must be
/// clean under both seeded and bounded-exhaustive exploration: reading
/// the flag entry merges the writer's view, so the data read is forced
/// to the latest entry.
#[test]
fn release_acquire_message_passing_holds() {
    let body = || {
        let data = Arc::new(SyncUsize::new(0));
        let flag = Arc::new(SyncBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let writer = spawn(move || {
            d2.store(42, Ordering::Relaxed); // sync: ordered by the Release store below
            f2.store(true, Ordering::Release); // sync: publishes the data store
        });
        if flag.load(Ordering::Acquire) {
            // sync: pairs with the writer's Release store
            assert_eq!(data.load(Ordering::Relaxed), 42);
            // sync: ^ acquire edge above already ordered this read
        }
        writer.join();
    };
    explore_seeded(0xBEEF, 400, body).assert_ok();
    let ex = explore_exhaustive(3, 20_000, body);
    assert!(ex.complete, "exhaustive run hit the schedule cap at {}", ex.schedules);
    ex.assert_ok();
}

/// Per-cell coherence: even fully `Relaxed`, one thread's successive
/// reads of a single cell never go backwards in modification order.
#[test]
fn relaxed_reads_are_coherent_per_cell() {
    explore_seeded(0xC0DE, 300, || {
        let cell = Arc::new(SyncUsize::new(0));
        let c2 = Arc::clone(&cell);
        let writer = spawn(move || {
            for v in 1..=5 {
                c2.store(v, Ordering::Relaxed); // sync: test fixture — coherence needs no ordering
            }
        });
        let mut prev = 0;
        for _ in 0..8 {
            let v = cell.load(Ordering::Relaxed); // sync: test fixture — coherence needs no ordering
            assert!(v >= prev, "coherence violated: read {v} after {prev}");
            prev = v;
        }
        writer.join();
    })
    .assert_ok();
}

/// A CAS from the shared initial value has exactly one winner, because
/// RMWs always read the modification-order tail.
#[test]
fn cas_election_has_single_winner() {
    let body = || {
        let slot = Arc::new(SyncUsize::new(0));
        let wins = Arc::new(SyncUsize::new(0));
        let handles: Vec<_> = (1..=3)
            .map(|id| {
                let (s, w) = (Arc::clone(&slot), Arc::clone(&wins));
                spawn(move || {
                    if s.compare_exchange(0, id, Ordering::Relaxed, Ordering::Relaxed).is_ok() {
                        // sync: test fixture — single-winner property is
                        // ordering-independent (RMW atomicity)
                        w.fetch_add(1, Ordering::Relaxed); // sync: test tally only
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(wins.load(Ordering::Relaxed), 1, "CAS election had multiple winners");
        // sync: ^ read after joins; join edges make it exact
    };
    explore_seeded(0x5EED, 500, body).assert_ok();
    explore_exhaustive(2, 50_000, body).assert_ok();
}

/// `join` merges the child's final view into the parent: a fully
/// `Relaxed` write before the child exits is visible after `join`.
#[test]
fn join_merges_child_view() {
    explore_seeded(0x10_1, 300, || {
        let data = Arc::new(SyncUsize::new(0));
        let d2 = Arc::clone(&data);
        let child = spawn(move || {
            d2.store(7, Ordering::Relaxed); // sync: ordered by the join edge
        });
        child.join();
        assert_eq!(data.load(Ordering::Relaxed), 7, "join did not synchronize");
        // sync: ^ join edge above already ordered this read
    })
    .assert_ok();
}

/// The spawn edge works the other way: writes before `spawn` are
/// visible to the child from its first instruction.
#[test]
fn spawn_passes_parent_view() {
    explore_seeded(0x20_2, 300, || {
        let data = Arc::new(SyncUsize::new(0));
        data.store(9, Ordering::Relaxed); // sync: ordered by the spawn edge
        let d2 = Arc::clone(&data);
        spawn(move || {
            assert_eq!(d2.load(Ordering::Relaxed), 9, "spawn did not pass the parent view");
            // sync: ^ spawn edge already ordered this read
        })
        .join();
    })
    .assert_ok();
}

/// Liveness: a spin-wait on a `Relaxed` flag terminates — the
/// stale-streak rule forces the latest value after a bounded number of
/// stale reads, modelling finite-time visibility on real hardware.
#[test]
fn relaxed_spin_wait_terminates() {
    explore_seeded(0x30_3, 200, || {
        let flag = Arc::new(SyncBool::new(false));
        let f2 = Arc::clone(&flag);
        let setter = spawn(move || {
            f2.store(true, Ordering::Relaxed); // sync: test fixture — liveness, not ordering
        });
        while !flag.load(Ordering::Relaxed) {
            // sync: test fixture — stale-streak liveness terminates this
        }
        setter.join();
    })
    .assert_ok();
}

/// A spin on a flag nobody ever sets exhausts the step budget and is
/// reported as a violation instead of hanging the test run.
#[test]
fn livelock_hits_step_budget() {
    let outcome = explore_seeded(0x40_4, 1, || {
        let flag = SyncBool::new(false);
        while !flag.load(Ordering::Relaxed) {
            // sync: test fixture — intentional livelock
        }
    });
    let v = outcome.assert_violation();
    assert!(v.message.contains("step budget"), "unexpected violation: {}", v.message);
}

/// The event log captures the (site, thread, ordering, epoch) tuples the
/// audit layer promises.
#[test]
fn events_are_recorded() {
    let outcome = explore_seeded(0x50_5, 1, || {
        let cell = SyncUsize::new(0);
        cell.store(3, Ordering::Release); // sync: test fixture — event recording
        assert_eq!(cell.load(Ordering::Acquire), 3); // sync: test fixture — event recording
        cell.fetch_add(1, Ordering::Relaxed); // sync: test fixture — event recording
    });
    outcome.assert_ok();
    let evs = &outcome.events;
    assert!(evs.iter().any(|e| e.op == OpKind::Store && e.ordering == Ordering::Release));
    assert!(evs.iter().any(|e| e.op == OpKind::Load && e.ordering == Ordering::Acquire && e.value == 3));
    assert!(evs.iter().any(|e| e.op == OpKind::Rmw && e.value == 4));
    assert!(evs.iter().all(|e| e.site.file().ends_with("model_semantics.rs")));
    let store_epoch = evs.iter().find(|e| e.op == OpKind::Store).unwrap().epoch;
    let load_epoch = evs.iter().find(|e| e.op == OpKind::Load).unwrap().epoch;
    assert_eq!(store_epoch, load_epoch, "load read a different epoch than the store wrote");
}

/// Outside an exploration context the facade behaves like the
/// passthrough build, including across real OS threads.
#[test]
fn passthrough_outside_exploration() {
    let cell = Arc::new(SyncUsize::new(0));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let c = Arc::clone(&cell);
            std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.fetch_add(1, Ordering::Relaxed); // sync: test counter only
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cell.load(Ordering::Relaxed), 4000); // sync: read after joins
}
