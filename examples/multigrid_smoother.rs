//! The paper's §5 future-work idea, implemented: block-asynchronous
//! relaxation as the smoother inside an algebraic multigrid solver,
//! compared against damped-Jacobi and Gauss-Seidel smoothing.
//!
//! ```text
//! cargo run --release --example multigrid_smoother
//! ```

use block_async_relax::core::multigrid::Multigrid;
use block_async_relax::core::smoother::{
    AsyncSmoother, DampedJacobiSmoother, GaussSeidelSmoother, Smoother,
};
use block_async_relax::prelude::*;
use block_async_relax::sparse::gen;

fn report<S: Smoother>(name: &str, a: &CsrMatrix, b: &[f64], smoother: S) {
    let n = a.n_rows();
    let t = std::time::Instant::now();
    let mg = Multigrid::new(a, smoother, 32).expect("hierarchy");
    let r = mg
        .solve(b, &vec![0.0; n], &SolveOptions::to_tolerance(1e-10, 100))
        .expect("solve");
    println!(
        "{name:<22}: {} levels, {:>3} V-cycles, residual {:.2e}, {:?}",
        mg.n_levels(),
        r.iterations,
        r.final_residual,
        t.elapsed()
    );
    assert!(r.converged, "{name} failed to converge");
}

fn main() {
    let m = 64;
    let a = gen::laplacian_2d_5pt(m);
    let n = a.n_rows();
    let b = a.mul_vec(&vec![1.0; n]).expect("square");
    println!("2D Poisson, n = {n}: V-cycle counts to 1e-10 by smoother\n");

    report("damped Jacobi (2/3)", &a, &b, DampedJacobiSmoother::default());
    report("Gauss-Seidel", &a, &b, GaussSeidelSmoother);
    report(
        "async-(2) blocks of 64",
        &a,
        &b,
        AsyncSmoother { block_size: 64, ..Default::default() },
    );

    // For contrast: plain (non-multigrid) relaxation on the same system.
    let plain = jacobi(&a, &b, &vec![0.0; n], &SolveOptions::to_tolerance(1e-10, 100_000))
        .expect("solve");
    println!(
        "\nplain Jacobi needs {} iterations for the same tolerance — the\n\
         multigrid hierarchy turns the asynchronous smoother into a scalable\n\
         solver, which is exactly the exascale pitch of the paper's outlook.",
        plain.iterations
    );
}
