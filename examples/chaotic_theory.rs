//! The theory layer made tangible: the Chazan–Miranker chaotic iteration
//! (paper §2.2, Eq. 3) with explicit update/shift functions, and the
//! *measured* shift distribution of the GPU-shaped async-(5) method —
//! showing that the executor's chaos really is an admissible asynchronous
//! iteration (bounded shifts), which is why Strikwerda's `rho(|B|) < 1`
//! theorem applies.
//!
//! ```text
//! cargo run --release --example chaotic_theory
//! ```

use block_async_relax::core::async_block::measure_staleness;
use block_async_relax::core::chazan::ChazanMiranker;
use block_async_relax::core::convergence::relative_residual;
use block_async_relax::prelude::*;
use block_async_relax::sparse::gen;
use block_async_relax::sparse::IterationMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A strictly diagonally dominant system: rho(|B|) < 1, so *every*
    // admissible chaotic schedule converges.
    let a = gen::random_diag_dominant(80, 4, 1.5, 7);
    let b = a.mul_vec(&vec![1.0; 80]).expect("square");
    let it = IterationMatrix::new(&a).expect("nonzero diagonal");
    println!(
        "rho(B) = {:.4}, rho(|B|) = {:.4}  (asynchronous convergence guaranteed)\n",
        it.spectral_radius().expect("estimate"),
        it.spectral_radius_abs().expect("estimate"),
    );

    // Run the abstract iteration with increasingly stale shift bounds
    // (few sweeps, so the staleness penalty is visible before the floor).
    println!("Chazan-Miranker iteration, 10 random sweeps:");
    for s_max in [0usize, 2, 8, 20] {
        let mut cm = ChazanMiranker::new(&a, &b, &vec![0.0; 80], s_max).expect("system");
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10 {
            cm.sweep_random(&mut rng);
        }
        let rr = relative_residual(&a, &b, cm.current());
        println!("  shift bound {s_max:>2}: relative residual {rr:.3e}");
    }

    // The GPU-shaped method realises the same theory object; measure the
    // shift function its executor actually produces on an fv-like system.
    let m = 40;
    let a = gen::laplacian_2d_9pt(m);
    let rhs = a.mul_vec(&vec![1.0; m * m]).expect("square");
    let p = RowPartition::uniform(m * m, 128).expect("partition");
    println!("\nrealised shift distribution of async-(5) on a {m}x{m} FEM grid:");
    println!("{:>12} {:>12} {:>10} {:>12}", "concurrency", "mean shift", "max shift", "fresh [%]");
    for workers in [1usize, 4, 14] {
        let trace = measure_staleness(
            &a,
            &rhs,
            &p,
            5,
            SimOptions { n_workers: workers, jitter: 0.3, seed: 1 },
            ScheduleKind::Random { seed: 1 },
            50,
        )
        .expect("measurement");
        let h = &trace.staleness;
        println!(
            "{:>12} {:>12.3} {:>10} {:>11.1}%",
            workers,
            h.mean_shift(),
            h.max_shift().unwrap_or(0),
            100.0 * h.fraction_fresh()
        );
        assert!(h.max_shift().unwrap_or(0) < 10, "shifts must stay bounded");
    }
    println!(
        "\nBounded shifts = admissible schedule = guaranteed convergence\n\
         whenever rho(|B|) < 1 — the paper's §2.2 conditions, verified live."
    );
}
