//! Steady-state heat conduction on a plate with a hot spot — the kind of
//! PDE workload the paper's introduction motivates for GPU relaxation
//! methods. Discretised with the 9-point FEM stencil, solved with
//! async-(5), and the temperature field summarised as ASCII art.
//!
//! ```text
//! cargo run --release --example heat_equation
//! ```

use block_async_relax::prelude::*;
use block_async_relax::sparse::gen;

fn main() {
    let m = 96; // grid side; n = 9216, close to the paper's fv sizes
    let a = gen::laplacian_2d_9pt(m);
    let n = a.n_rows();

    // Heat source: a hot square near the centre, cold Dirichlet borders
    // (implicit in the stencil truncation).
    let mut b = vec![0.0f64; n];
    for i in m / 3..m / 2 {
        for j in m / 3..m / 2 {
            b[i * m + j] = 1.0;
        }
    }

    let partition = RowPartition::uniform(n, 448).expect("valid block size");
    let solver = AsyncBlockSolver::async_k(5);
    let result = solver
        .solve(&a, &b, &vec![0.0; n], &partition, &SolveOptions::to_tolerance(1e-9, 100_000))
        .expect("valid system");

    println!(
        "solved {}x{} heat equation: {} global iterations, residual {:.2e}",
        m, m, result.iterations, result.final_residual
    );
    assert!(result.converged);

    // Downsample the temperature field to a terminal-sized picture.
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let peak = result.x.iter().cloned().fold(0.0f64, f64::max).max(1e-300);
    let rows = 24;
    let cols = 48;
    println!("\ntemperature field (peak = {peak:.3}):");
    for r in 0..rows {
        let mut line = String::with_capacity(cols);
        for c in 0..cols {
            let i = r * m / rows;
            let j = c * m / cols;
            let v = result.x[i * m + j] / peak;
            let idx = ((v * (shades.len() - 1) as f64).round() as usize).min(shades.len() - 1);
            line.push(shades[idx]);
        }
        println!("  {line}");
    }

    // Sanity: heat spreads — the hot-spot centre is the warmest region.
    let centre = result.x[(m * 5 / 12) * m + m * 5 / 12];
    let corner = result.x[m + 1];
    println!("\ncentre temperature {centre:.4} vs corner {corner:.6}");
    assert!(centre > 10.0 * corner.max(1e-12));
}
