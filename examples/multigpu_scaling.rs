//! Multi-GPU scaling (paper §4.6): solve `Trefethen_20000` with the
//! three communication schemes on 1–4 simulated Fermi GPUs and print the
//! Figure 11 bars.
//!
//! ```text
//! cargo run --release --example multigpu_scaling
//! ```

use block_async_relax::prelude::*;
use block_async_relax::sparse::gen::TestMatrix;

fn main() {
    let a = TestMatrix::Trefethen20000.build().expect("generator");
    let n = a.n_rows();
    let b = a.mul_vec(&vec![1.0; n]).expect("square");
    let x0 = vec![0.0; n];
    // Reference iteration count from a single-GPU run; the accuracy is
    // essentially linear in runtime (paper §4.6), so all configurations
    // are priced at the same global-iteration budget.
    let reference = MultiGpuSolver::supermicro(1, CommStrategy::Amc)
        .solve(&a, &b, &x0, &SolveOptions::to_tolerance(1e-12, 10_000))
        .expect("solve");
    assert!(reference.solve.converged);
    let iters = reference.solve.iterations;
    let opts = SolveOptions::fixed_iterations(iters);

    println!(
        "Trefethen_20000 (n = {n}, nnz = {}), async-(5), {iters} global iterations\n",
        a.nnz()
    );
    println!("{:<6} {:>10} {:>10} {:>10} {:>10}", "scheme", "1 GPU", "2 GPUs", "3 GPUs", "4 GPUs");

    for strategy in CommStrategy::ALL {
        let mut cells = Vec::new();
        for g in 1..=4 {
            let solver = MultiGpuSolver::supermicro(g, strategy);
            let r = solver.solve(&a, &b, &x0, &opts).expect("solve");
            assert!(r.solve.final_residual < 1e-10, "{:?} x{} lost accuracy", strategy, g);
            cells.push(r.seconds_per_iteration * iters as f64);
        }
        println!(
            "{:<6} {:>9.3}s {:>9.3}s {:>9.3}s {:>9.3}s",
            strategy.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
        if strategy == CommStrategy::Amc {
            assert!(cells[1] < cells[0], "AMC must gain from a second GPU");
            assert!(cells[2] > cells[1], "the third GPU crosses QPI and hurts AMC");
            assert!(cells[3] < cells[2], "the fourth GPU amortises the QPI hit");
        }
    }

    println!(
        "\nAMC nearly halves with the second GPU (independent PCIe links); \
         the third crosses the QPI socket boundary and is *slower*, exactly \
         as the paper observes; GPU-direct schemes serialise on the master \
         GPU's link and barely gain."
    );
}
