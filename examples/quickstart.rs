//! Quickstart: solve a sparse SPD system with the paper's async-(5)
//! block-asynchronous iteration and compare against the classics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use block_async_relax::prelude::*;
use block_async_relax::sparse::gen;

fn main() {
    // A 2D Poisson problem (100 x 100 grid, n = 10000) with a known
    // solution, so errors are observable.
    let a = gen::laplacian_2d_5pt(100);
    let n = a.n_rows();
    let x_true = vec![1.0; n];
    let b = a.mul_vec(&x_true).expect("square system");
    let x0 = vec![0.0; n];

    println!("system: n = {n}, nnz = {}", a.nnz());
    let rho = IterationMatrix::new(&a)
        .expect("nonzero diagonal")
        .spectral_radius()
        .expect("power iteration converges");
    println!("Jacobi spectral radius rho(B) = {rho:.6}\n");

    let opts = SolveOptions::to_tolerance(1e-10, 200_000);

    // Classical synchronous baselines.
    let t = std::time::Instant::now();
    let gs = gauss_seidel(&a, &b, &x0, &opts).expect("valid system");
    println!(
        "Gauss-Seidel : {:>6} iterations, residual {:.2e}, {:?}",
        gs.iterations,
        gs.final_residual,
        t.elapsed()
    );

    let t = std::time::Instant::now();
    let cg = conjugate_gradient(&a, &b, &x0, &opts).expect("valid system");
    println!(
        "CG           : {:>6} iterations, residual {:.2e}, {:?}",
        cg.iterations,
        cg.final_residual,
        t.elapsed()
    );

    // The paper's method: blocks of 448 rows (one GPU thread block each),
    // 5 local Jacobi sweeps per asynchronous block update.
    let partition = RowPartition::uniform(n, 448).expect("valid block size");
    let solver = AsyncBlockSolver::async_k(5);
    let t = std::time::Instant::now();
    let a5 = solver.solve(&a, &b, &x0, &partition, &opts).expect("valid system");
    println!(
        "async-(5)    : {:>6} global iterations, residual {:.2e}, {:?}",
        a5.iterations,
        a5.final_residual,
        t.elapsed()
    );

    let err = a5
        .x
        .iter()
        .zip(&x_true)
        .map(|(xi, ti)| (xi - ti).abs())
        .fold(0.0f64, f64::max);
    println!("\nasync-(5) max component error vs exact solution: {err:.2e}");
    assert!(a5.converged, "async-(5) must converge on this system");
}
