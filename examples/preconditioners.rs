//! The §5 preconditioning outlook, live: Krylov methods with the
//! relaxation-derived preconditioners this workspace provides, on an SPD
//! Poisson system and a nonsymmetric convection-diffusion system.
//!
//! ```text
//! cargo run --release --example preconditioners
//! ```

use block_async_relax::core::bicgstab::bicgstab;
use block_async_relax::core::chebyshev::auto_chebyshev;
use block_async_relax::core::ilu::Ilu0;
use block_async_relax::core::pcg::{
    pcg, BlockJacobiPreconditioner, IdentityPreconditioner, JacobiPreconditioner,
};
use block_async_relax::prelude::*;
use block_async_relax::sparse::gen;

fn main() {
    // --- SPD: 2D Poisson, n = 4096 ---
    let a = gen::laplacian_2d_5pt(64);
    let n = a.n_rows();
    let b = a.mul_vec(&vec![1.0; n]).expect("square");
    let x0 = vec![0.0; n];
    let opts = SolveOptions::to_tolerance(1e-10, 10_000);

    println!("2D Poisson (n = {n}), CG iterations to 1e-10 by preconditioner:");
    let plain = pcg(&a, &b, &x0, &IdentityPreconditioner, &opts).expect("solve");
    println!("  none          : {:>4}", plain.iterations);
    let jac = pcg(&a, &b, &x0, &JacobiPreconditioner::new(&a).expect("SPD"), &opts)
        .expect("solve");
    println!("  Jacobi        : {:>4}", jac.iterations);
    let partition = RowPartition::uniform(n, 64).expect("partition");
    let blk = pcg(
        &a,
        &b,
        &x0,
        &BlockJacobiPreconditioner::new(&a, &partition).expect("blocks"),
        &opts,
    )
    .expect("solve");
    println!("  block-Jacobi  : {:>4}   (the async-(k) subdomains, reused)", blk.iterations);
    let ilu = pcg(&a, &b, &x0, &Ilu0::new(&a).expect("factorise"), &opts).expect("solve");
    println!("  ILU(0)        : {:>4}", ilu.iterations);
    let (cheb, bounds) = auto_chebyshev(&a, &b, &x0, &opts).expect("solve");
    println!(
        "  (Chebyshev)   : {:>4}   reduction-free, bounds [{:.4}, {:.4}]",
        cheb.iterations, bounds.0, bounds.1
    );
    assert!(blk.iterations <= jac.iterations);
    assert!(ilu.iterations <= blk.iterations);

    // --- Nonsymmetric: convection-diffusion with a strong wind ---
    let a = gen::convection_diffusion_2d(48, 0.02, 1.0, 0.4);
    let n = a.n_rows();
    let b = a.mul_vec(&vec![1.0; n]).expect("square");
    let x0 = vec![0.0; n];
    println!("\nconvection-diffusion (n = {n}, nonsymmetric), BiCGstab iterations:");
    let plain = bicgstab(&a, &b, &x0, &IdentityPreconditioner, &opts).expect("solve");
    println!("  none          : {:>4}", plain.iterations);
    let ilu = bicgstab(&a, &b, &x0, &Ilu0::new(&a).expect("factorise"), &opts).expect("solve");
    println!("  ILU(0)        : {:>4}", ilu.iterations);
    assert!(plain.converged && ilu.converged);

    // ... and the asynchronous method handles it too (rho(|B|) < 1 by
    // diagonal dominance), no Krylov machinery required:
    let p = RowPartition::uniform(n, 96).expect("partition");
    let r = AsyncBlockSolver::async_k(5).solve(&a, &b, &x0, &p, &opts).expect("solve");
    println!(
        "  async-(5)     : {:>4} global iterations (chaotic, reduction-free)",
        r.iterations
    );
    assert!(r.converged);
}
