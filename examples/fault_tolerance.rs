//! Fault tolerance demo (paper §4.5): a quarter of the "cores" die
//! mid-solve. A checkpoint-free synchronous method would be lost; the
//! asynchronous iteration keeps converging once the components are
//! reassigned, and the convergence-delay monitor spots the outage.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use block_async_relax::fault::{
    checkpoint_free_async, checkpointed_jacobi, CheckpointPolicy, ConvergenceMonitor,
    FailureScenario,
};
use block_async_relax::prelude::*;
use block_async_relax::sparse::gen::TestMatrix;

fn main() {
    let a = TestMatrix::Fv1.build().expect("generator");
    let n = a.n_rows();
    let b = a.mul_vec(&vec![1.0; n]).expect("square");
    let x0 = vec![0.0; n];
    let partition = RowPartition::uniform(n, 448).expect("valid block size");
    let solver = AsyncBlockSolver::async_k(5);
    let opts = SolveOptions::fixed_iterations(150);

    println!("fv1 (n = {n}), async-(5), 25% of cores fail at iteration 10\n");

    let healthy = solver.solve(&a, &b, &x0, &partition, &opts).expect("solve");
    println!("no failure   : residual {:.2e} after {} iterations", healthy.final_residual, 150);

    for (label, recovery) in [
        ("recovery-(10)", Some(10)),
        ("recovery-(20)", Some(20)),
        ("recovery-(30)", Some(30)),
        ("no recovery  ", None),
    ] {
        let scenario = FailureScenario::paper_default(recovery, 7).build(n);
        let r = solver
            .solve_filtered(&a, &b, &x0, &partition, &opts, &scenario)
            .expect("solve");
        println!("{label}: residual {:.2e}", r.final_residual);
    }

    // The silent-error detector: feed it the faulty run's residuals.
    let scenario = FailureScenario::paper_default(None, 7).build(n);
    let faulty = solver
        .solve_filtered(
            &a,
            &b,
            &x0,
            &partition,
            &SolveOptions::fixed_iterations(60),
            &scenario,
        )
        .expect("solve");
    let mut monitor = ConvergenceMonitor::new(8, 5.0);
    let alarm = faulty.history.iter().position(|&r| monitor.observe(r));
    match alarm {
        Some(k) => println!(
            "\nconvergence monitor raised an alarm at iteration {} (outage began at 10)",
            k + 1
        ),
        None => println!("\nconvergence monitor saw nothing unusual (unexpected!)"),
    }
    assert!(alarm.is_some(), "the stagnating run must trip the monitor");

    // The exascale economics (paper §4.5): a synchronous solver must
    // checkpoint, and once failures land faster than a checkpoint cycle
    // it never finishes — the async method needs no checkpoints at all.
    println!("\ncheckpoint economics under shrinking MTBF (work in iteration units):");
    let tol = 1e-9;
    for mtbf in [64usize, 16, 8] {
        let sync = checkpointed_jacobi(
            &a,
            &b,
            &x0,
            tol,
            mtbf,
            CheckpointPolicy::default(),
            3_000.0,
        )
        .expect("run");
        let asyn = checkpoint_free_async(
            &a,
            &b,
            &x0,
            &partition,
            tol,
            mtbf,
            (mtbf / 2).clamp(1, 20),
            7,
            3_000.0,
        )
        .expect("run");
        println!(
            "  MTBF {mtbf:>3}: sync+checkpoint {:>7.0} ({}) | async {:>6.0} ({})",
            sync.work,
            if sync.converged { "converged" } else { "LIVELOCKED" },
            asyn.work,
            if asyn.converged { "converged" } else { "failed" },
        );
        assert!(asyn.converged, "async must converge at every failure rate");
    }
}
