#![warn(missing_docs)]

//! # block-async-relax
//!
//! A Rust reproduction of
//! *A Block-Asynchronous Relaxation Method for Graphics Processing Units*
//! (Anzt, Tomov, Dongarra, Heuveline; IPDPS Workshops 2012).
//!
//! This crate is the facade over the workspace:
//!
//! * [`sparse`] — sparse linear algebra, test-matrix generators, spectra;
//! * [`gpu`] — the GPU execution substrate (discrete-event simulator,
//!   real-threads executor, calibrated timing model, multi-GPU topology);
//! * [`core`] — the solvers: Jacobi, Gauss-Seidel, SOR, CG, the abstract
//!   Chazan–Miranker chaotic iteration, and the paper's **async-(k)**
//!   block-asynchronous method, plus multigrid-smoother extensions;
//! * [`multigpu`] — the AMC/DC/DK multi-device communication schemes;
//! * [`fault`] — failure injection, recovery, silent-error detection;
//! * [`exp`] — the experiment harness regenerating every table and figure
//!   of the paper (see the `repro` binary);
//! * [`sync`] — the audited atomics facade every executor's shared-memory
//!   protocol goes through: a zero-cost `std::sync::atomic` passthrough
//!   normally, an instrumented weak-memory model checker under the
//!   `model` cargo feature (`cargo test --features model` runs the
//!   schedule-explorer suites).
//!
//! ## Quickstart
//!
//! ```
//! use block_async_relax::prelude::*;
//!
//! // A diagonally dominant SPD system with a known solution.
//! let a = block_async_relax::sparse::gen::laplacian_2d_5pt(16);
//! let x_true = vec![1.0; a.n_rows()];
//! let b = a.mul_vec(&x_true).unwrap();
//!
//! // Solve with the paper's async-(5): 5 local Jacobi sweeps per
//! // asynchronously scheduled block update.
//! let partition = RowPartition::uniform(a.n_rows(), 32).unwrap();
//! let solver = AsyncBlockSolver::async_k(5);
//! let result = solver
//!     .solve(&a, &b, &vec![0.0; a.n_rows()], &partition,
//!            &SolveOptions::to_tolerance(1e-10, 10_000))
//!     .unwrap();
//! assert!(result.converged);
//! ```

pub use abr_core as core;
pub use abr_exp as exp;
pub use abr_fault as fault;
pub use abr_gpu as gpu;
pub use abr_multigpu as multigpu;
pub use abr_sparse as sparse;
pub use abr_sync as sync;

/// The most common imports in one place.
pub mod prelude {
    pub use abr_core::{
        bicgstab, block_jacobi, conjugate_gradient, gauss_seidel, gmres, jacobi, pcg, sor,
        AsyncBlockSolver, ExecutorKind, LocalSweep, ScheduleKind, SolveOptions, SolveResult,
    };
    pub use abr_gpu::{SimOptions, ThreadedOptions, TimingModel, Topology};
    pub use abr_multigpu::{CommStrategy, MultiGpuSolver};
    pub use abr_sparse::{CooMatrix, CsrMatrix, IterationMatrix, RowPartition};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work() {
        let a = CsrMatrix::identity(4);
        let r = jacobi(&a, &[1.0; 4], &[0.0; 4], &SolveOptions::to_tolerance(1e-14, 5)).unwrap();
        assert!(r.converged);
        assert_eq!(r.x, vec![1.0; 4]);
    }
}
