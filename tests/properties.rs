//! Cross-crate property-based tests (proptest): the convergence theory of
//! §2.2 and the structural invariants of the pipeline, exercised on
//! randomly generated systems and schedules.

use block_async_relax::core::chazan::solve_chaotic;
use block_async_relax::core::convergence::relative_residual;
use block_async_relax::prelude::*;
use block_async_relax::sparse::gen::{random_diag_dominant, random_spd_tridiag_perturbed};
use block_async_relax::sparse::reorder::reverse_cuthill_mckee;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Strikwerda's theorem (§2.2): whenever `rho(|B|) < 1`, the chaotic
    /// iteration converges for *every* admissible update order and
    /// bounded shift function. Strict diagonal dominance guarantees the
    /// premise; the schedule and shifts are drawn at random.
    #[test]
    fn chaotic_iteration_converges_for_random_admissible_schedules(
        seed in 0u64..500,
        s_max in 0usize..6,
        n in 10usize..40,
    ) {
        let a = random_diag_dominant(n, 4, 1.5, seed);
        let rhs = a.mul_vec(&vec![1.0; n]).expect("square");
        let x = solve_chaotic(&a, &rhs, &vec![0.0; n], s_max, 80, seed ^ 0xabcd).expect("solve");
        let rr = relative_residual(&a, &rhs, &x);
        prop_assert!(rr < 1e-6, "rho(|B|) < 1 must imply convergence, got {rr}");
    }

    /// async-(k) under any seeded schedule/jitter converges to the true
    /// solution of a strictly diagonally dominant system.
    #[test]
    fn async_k_converges_for_random_schedules(
        seed in 0u64..500,
        k in 1usize..6,
        block in 2usize..20,
    ) {
        let n = 60;
        let a = random_diag_dominant(n, 4, 1.4, seed);
        let rhs = a.mul_vec(&vec![1.0; n]).expect("square");
        let p = RowPartition::uniform(n, block).expect("partition");
        let solver = AsyncBlockSolver {
            local_iters: k,
            schedule: ScheduleKind::Random { seed },
            executor: ExecutorKind::Sim(SimOptions { n_workers: 5, jitter: 0.4, seed }),
            damping: 1.0,
            local_sweep: Default::default(),
        };
        let r = solver
            .solve(&a, &rhs, &vec![0.0; n], &p, &SolveOptions::to_tolerance(1e-9, 5_000))
            .expect("solve");
        prop_assert!(r.converged, "residual {}", r.final_residual);
        let err = r.x.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max);
        prop_assert!(err < 1e-6, "max error {err}");
    }

    /// The solution is a fixed point: starting async-(k) *at* the exact
    /// solution leaves it there (up to machine noise), for any schedule.
    #[test]
    fn exact_solution_is_a_fixed_point_of_async_k(
        seed in 0u64..500,
        k in 1usize..5,
    ) {
        let n = 50;
        let a = random_spd_tridiag_perturbed(n, seed);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 2.0).collect();
        let rhs = a.mul_vec(&x_true).expect("square");
        let p = RowPartition::uniform(n, 7).expect("partition");
        let r = AsyncBlockSolver::async_k(k)
            .solve(&a, &rhs, &x_true, &p, &SolveOptions::fixed_iterations(5))
            .expect("solve");
        let drift = r.x.iter().zip(&x_true).map(|(x, t)| (x - t).abs()).fold(0.0f64, f64::max);
        prop_assert!(drift < 1e-10, "fixed point drifted by {drift}");
    }

    /// Jacobi and Gauss-Seidel agree with CG on the solution whenever all
    /// converge.
    #[test]
    fn all_methods_agree_on_the_solution(seed in 0u64..500) {
        let n = 40;
        let a = random_spd_tridiag_perturbed(n, seed);
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let rhs = a.mul_vec(&x_true).expect("square");
        let opts = SolveOptions::to_tolerance(1e-12, 500_000);
        let j = jacobi(&a, &rhs, &vec![0.0; n], &opts).expect("jacobi");
        let g = gauss_seidel(&a, &rhs, &vec![0.0; n], &opts).expect("gs");
        let c = conjugate_gradient(&a, &rhs, &vec![0.0; n], &opts).expect("cg");
        prop_assert!(j.converged && g.converged && c.converged);
        for x in [&j.x, &g.x, &c.x] {
            let err = x.iter().zip(&x_true).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
            prop_assert!(err < 1e-8, "max error {err}");
        }
    }

    /// RCM always produces a valid permutation, and the permuted matrix
    /// is similar: same solution after un-permuting.
    #[test]
    fn rcm_permutation_preserves_the_system(seed in 0u64..500) {
        let n = 50;
        let a = random_diag_dominant(n, 4, 1.5, seed);
        let perm = reverse_cuthill_mckee(&a);
        let mut seen = vec![false; n];
        for &v in &perm {
            prop_assert!(!seen[v]);
            seen[v] = true;
        }
        let a2 = a.permute_sym(&perm).expect("valid permutation");
        let x_true = vec![1.0; n]; // invariant under any permutation
        let rhs2 = a2.mul_vec(&x_true).expect("square");
        let r = gauss_seidel(&a2, &rhs2, &vec![0.0; n], &SolveOptions::to_tolerance(1e-10, 100_000))
            .expect("gs");
        prop_assert!(r.converged);
        let err = r.x.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max);
        prop_assert!(err < 1e-7, "max error {err}");
    }

    /// Fault injection with eventual recovery never changes the limit:
    /// the recovered run reaches the same solution as the healthy one.
    #[test]
    fn recovery_preserves_the_limit(
        seed in 0u64..500,
        t0 in 2usize..15,
        tr in 1usize..25,
    ) {
        use block_async_relax::fault::FailureScenario;
        let n = 48;
        let a = random_diag_dominant(n, 4, 1.5, seed);
        let rhs = a.mul_vec(&vec![1.0; n]).expect("square");
        let p = RowPartition::uniform(n, 6).expect("partition");
        let scenario = FailureScenario { t0, fraction: 0.25, recovery: Some(tr), seed }.build(n);
        let r = AsyncBlockSolver::async_k(3)
            .solve_filtered(&a, &rhs, &vec![0.0; n], &p,
                            &SolveOptions::fixed_iterations(t0 + tr + 120), &scenario)
            .expect("solve");
        let err = r.x.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max);
        prop_assert!(err < 1e-8, "max error {err}");
    }
}
