//! The halo-refresh election under the schedule explorer.
//!
//! `halo.rs` elects the worker that refreshes a device's stage by an
//! atomic `fetch_max` raise of the device's epoch: exactly one worker
//! observes `prev < target` per raised value. The older shape — load the
//! epoch, bail if it already covers `target`, else `compare_exchange` —
//! has a stale-read hole: a worker can load an outdated epoch, lose the
//! CAS against a value that *still* does not cover `target`, and walk
//! away from a refresh nobody else will ever perform.
//!
//! Three tests on the bare election primitive (the explorer must catch
//! the load-then-CAS variant and clear the `fetch_max` one), then two on
//! the real [`HaloExchange`]: single-winner refresh accounting under DC,
//! and the one-sided AMC stamp-provenance bound.
//!
//! Run with `cargo test --features model`.
#![cfg(feature = "model")]

use block_async_relax::gpu::{AtomicF64Vec, CommStrategy, HaloExchange};
use block_async_relax::sync::model::{explore_exhaustive, explore_seeded, spawn};
use block_async_relax::sync::{Ordering, SyncUsize};
use std::sync::Arc;

/// Epoch targets raced over in the primitive tests.
const EPOCHS: usize = 3;

/// The bare election: `EPOCHS` virtual threads, thread `i` responsible
/// for raising the epoch to `i` (as one device worker is the first to
/// cross each exchange-epoch boundary). With `fetch_max` the final epoch
/// is the maximum of all targets no matter how stale anyone's view was;
/// with load-then-CAS a stale load can silently drop a raise.
fn raise_protocol(fetch_max: bool) {
    let epoch = Arc::new(SyncUsize::new(0));
    let raisers: Vec<_> = (1..=EPOCHS)
        .map(|target| {
            let epoch = Arc::clone(&epoch);
            spawn(move || {
                if fetch_max {
                    // sync: test fixture — the shipped election; RMW
                    // atomicity alone picks the winner (halo.rs).
                    epoch.fetch_max(target, Ordering::Relaxed);
                } else {
                    // sync: test fixture — the retired load-then-CAS
                    // shape under audit.
                    let cur = epoch.load(Ordering::Relaxed);
                    if cur < target {
                        // sync: test fixture — fails against any value
                        // newer than the (possibly stale) `cur`, even one
                        // below `target`.
                        let _ = epoch.compare_exchange(
                            cur,
                            target,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        );
                    }
                }
            })
        })
        .collect();
    for h in raisers {
        h.join();
    }
    // sync: post-join read — the join edges floor this thread's view at
    // every raiser's final write, so the read is exact.
    let final_epoch = epoch.load(Ordering::Relaxed);
    assert_eq!(
        final_epoch, EPOCHS,
        "epoch raise dropped: final epoch {final_epoch} never reached {EPOCHS}"
    );
}

/// `fetch_max` raises can never be dropped, under seeded and
/// bounded-preemption-exhaustive schedules.
#[test]
fn fetch_max_raise_never_drops_an_epoch() {
    explore_seeded(0xE1EC, 1_000, || raise_protocol(true)).assert_ok();
    let outcome = explore_exhaustive(3, 20_000, || raise_protocol(true));
    outcome.assert_ok();
    assert!(outcome.complete, "the raise protocol's schedule tree should be fully enumerable");
}

/// The explorer must catch the load-then-CAS shape dropping a raise
/// (stale load, lost CAS, no retry — the hole the `fetch_max` rewrite
/// in `halo.rs` closed).
#[test]
fn load_then_cas_election_drops_epochs() {
    let outcome = explore_seeded(0xD2099, 1_000, || raise_protocol(false));
    let v = outcome.assert_violation();
    assert!(v.message.contains("epoch raise dropped"), "unexpected violation: {}", v.message);
}

/// Single-winner accounting: all workers of one device race every epoch
/// boundary; per raised value exactly one of them may win. Tallies are
/// kept per target and checked post-join — with in-order targets each
/// epoch is won exactly once.
#[test]
fn election_has_exactly_one_winner_per_epoch() {
    let body = || {
        let epoch = Arc::new(SyncUsize::new(0));
        let wins: Arc<Vec<SyncUsize>> =
            Arc::new((0..EPOCHS).map(|_| SyncUsize::new(0)).collect());
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let (epoch, wins) = (Arc::clone(&epoch), Arc::clone(&wins));
                spawn(move || {
                    for target in 1..=EPOCHS {
                        // sync: test fixture — the shipped election.
                        let prev = epoch.fetch_max(target, Ordering::Relaxed);
                        if prev < target {
                            // sync: tally of wins, read post-join.
                            wins[target - 1].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in workers {
            h.join();
        }
        for (i, w) in wins.iter().enumerate() {
            // sync: post-join read, ordered by the join edges.
            let n = w.load(Ordering::Relaxed);
            assert_eq!(n, 1, "epoch {} won {n} times, want exactly 1", i + 1);
        }
    };
    explore_seeded(0x51_99_1E, 1_000, body).assert_ok();
    let outcome = explore_exhaustive(2, 20_000, body);
    outcome.assert_ok();
    assert!(outcome.schedules > 10, "suspiciously few schedules ({})", outcome.schedules);
}

/// The real DC exchange: two workers of device 0 race `maybe_refresh`
/// over `ROUNDS` rounds with an epoch every round. The election bounds
/// total refreshes by the number of epochs (no double win), at least the
/// final epoch is refreshed, staged remote values are ones that were
/// genuinely written to the live iterate, and the freshness stamp never
/// exceeds the largest watermark offered.
#[test]
fn dc_refresh_wins_are_unique_and_stage_is_genuine() {
    const ROUNDS: usize = 3;
    let body = || {
        let halo = Arc::new(
            HaloExchange::for_strategy(CommStrategy::Dc, &[0, 1, 2], &[0.0, 0.0], 1)
                .expect("DC has a stage"),
        );
        let live = Arc::new(AtomicF64Vec::from_slice(&[0.0, 0.0]));
        let workers: Vec<_> = (0..2)
            .map(|w| {
                let (halo, live) = (Arc::clone(&halo), Arc::clone(&live));
                spawn(move || {
                    for round in 1..=ROUNDS {
                        // Each worker advances the remote row (row 1 is
                        // remote to device 0) before offering a refresh,
                        // so the stage can only ever capture values some
                        // worker actually wrote.
                        live.set(1, (round * 10 + w) as f64);
                        halo.maybe_refresh(0, round, &live, round);
                    }
                })
            })
            .collect();
        for h in workers {
            h.join();
        }
        let refreshes = halo.refreshes();
        assert!(
            (1..=ROUNDS).contains(&refreshes),
            "DC refreshes {refreshes} outside [1, {ROUNDS}]: an epoch was double-won or all lost"
        );
        let staged = halo.view(0, &live).get(1);
        let genuine = staged == 0.0
            || (1..=ROUNDS).any(|r| staged == (r * 10) as f64 || staged == (r * 10 + 1) as f64);
        assert!(genuine, "staged value {staged} was never written to the live iterate");
        let stamp = halo.stage_stamp(0);
        assert!(stamp <= ROUNDS, "stamp {stamp} exceeds the largest offered watermark {ROUNDS}");
    };
    explore_seeded(0xDC0, 600, body).assert_ok();
}

/// The AMC scheme's stamp provenance (the one-sided extra-epoch bound):
/// a pulled stamp is either the initial 0 or some watermark a push
/// genuinely offered, and never exceeds the largest one — stamps may
/// *regress* across different winners (admissible raciness the staleness
/// accounting tolerates), but they cannot be invented.
#[test]
fn amc_stamp_provenance_is_one_sided() {
    const ROUNDS: usize = 3;
    let body = || {
        let halo = Arc::new(
            HaloExchange::for_strategy(CommStrategy::Amc, &[0, 1, 2], &[0.0, 0.0], 1)
                .expect("AMC has a stage"),
        );
        let live = Arc::new(AtomicF64Vec::from_slice(&[0.0, 0.0]));
        let workers: Vec<_> = (0..2)
            .map(|d| {
                let (halo, live) = (Arc::clone(&halo), Arc::clone(&live));
                spawn(move || {
                    for round in 1..=ROUNDS {
                        live.set(d, (round * 10 + d) as f64);
                        halo.maybe_refresh(d, round, &live, round);
                    }
                })
            })
            .collect();
        for h in workers {
            h.join();
        }
        for d in 0..2 {
            let stamp = halo.stage_stamp(d);
            assert!(
                stamp <= ROUNDS,
                "device {d} stamp {stamp} exceeds every watermark any push offered"
            );
        }
    };
    explore_seeded(0xA3C, 600, body).assert_ok();
}
