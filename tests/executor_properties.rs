//! Property tests of the execution fabric itself: for arbitrary worker
//! counts, jitters, seeds and block layouts, the DES must preserve its
//! invariants — exact update counts, bounded skew under per-block
//! serialisation, determinism, and value-equivalence at the fixed point.

use block_async_relax::gpu::kernel::AllowAll;
use block_async_relax::gpu::schedule::BlockSchedule;
use block_async_relax::gpu::{BlockKernel, SimExecutor, SimOptions, XView};
use block_async_relax::gpu::{
    NoMonitor, PersistentExecutor, PersistentOptions, PersistentWorkspace, RandomPermutation,
    RoundRobin,
};
use proptest::prelude::*;

/// A linear test kernel: every component moves halfway to the average of
/// its block's neighbours plus a constant — converges for any schedule,
/// and its fixed point is exactly the constant vector.
struct Averager {
    n: usize,
    block: usize,
    target: f64,
}

impl BlockKernel for Averager {
    fn n(&self) -> usize {
        self.n
    }
    fn n_blocks(&self) -> usize {
        self.n.div_ceil(self.block)
    }
    fn block_range(&self, b: usize) -> (usize, usize) {
        (b * self.block, ((b + 1) * self.block).min(self.n))
    }
    fn update_block(&self, b: usize, x: &XView<'_>, out: &mut [f64]) {
        let (s, e) = self.block_range(b);
        for (o, i) in out.iter_mut().zip(s..e) {
            let left = x.get(i.saturating_sub(1));
            let right = x.get((i + 1).min(self.n - 1));
            *o = 0.5 * self.target + 0.25 * (left + right);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn update_counts_exact_for_any_configuration(
        n in 4usize..64,
        block in 1usize..16,
        workers in 1usize..20,
        jitter in 0.0f64..0.8,
        seed in 0u64..1000,
        rounds in 1usize..12,
    ) {
        let kernel = Averager { n, block: block.min(n), target: 1.0 };
        let mut x = vec![0.0; n];
        let exec = SimExecutor::new(SimOptions { n_workers: workers, jitter, seed });
        let mut sched = RandomPermutation::new(seed ^ 0xff);
        let trace = exec.run(&kernel, &mut x, rounds, &mut sched, &AllowAll, |_, _| {});
        prop_assert!(trace.updates_per_block.iter().all(|&c| c == rounds));
        prop_assert_eq!(trace.global_iterations(), rounds);
        prop_assert_eq!(trace.skipped_updates, 0);
    }

    #[test]
    fn deterministic_for_same_seed(
        workers in 1usize..8,
        jitter in 0.0f64..0.5,
        seed in 0u64..1000,
    ) {
        let kernel = Averager { n: 24, block: 5, target: 2.0 };
        let run = || {
            let mut x: Vec<f64> = (0..24).map(|i| i as f64).collect();
            let exec = SimExecutor::new(SimOptions { n_workers: workers, jitter, seed });
            let mut sched = RandomPermutation::new(seed);
            exec.run(&kernel, &mut x, 8, &mut sched, &AllowAll, |_, _| {});
            x
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn fixed_point_is_preserved_under_any_schedule(
        workers in 1usize..10,
        jitter in 0.0f64..0.8,
        seed in 0u64..1000,
    ) {
        // starting AT the fixed point (the constant target vector), any
        // execution leaves it there exactly
        let kernel = Averager { n: 30, block: 4, target: 3.5 };
        let mut x = vec![3.5; 30];
        let exec = SimExecutor::new(SimOptions { n_workers: workers, jitter, seed });
        let mut sched = RandomPermutation::new(seed);
        exec.run(&kernel, &mut x, 6, &mut sched, &AllowAll, |_, _| {});
        prop_assert!(x.iter().all(|&v| (v - 3.5).abs() < 1e-14));
    }

    #[test]
    fn skew_stays_bounded_by_serialised_updates(
        workers in 1usize..32,
        jitter in 0.0f64..0.9,
        seed in 0u64..1000,
    ) {
        let kernel = Averager { n: 40, block: 4, target: 1.0 };
        let mut x = vec![0.0; 40];
        let exec = SimExecutor::new(SimOptions { n_workers: workers, jitter, seed });
        let rounds = 20usize;
        let trace = exec.run(&kernel, &mut x, rounds, &mut RoundRobin, &AllowAll, |_, _| {});
        // Per-block serialisation makes the skew a slow random walk in
        // the duration jitter, instead of growing linearly with surplus
        // workers (the pre-serialisation failure mode): bounded by the
        // accumulated jitter, far below the round count.
        let bound = 3 + (rounds as f64 * jitter).ceil() as usize / 2;
        prop_assert!(
            trace.max_skew <= bound,
            "skew {} exceeds jitter bound {bound}",
            trace.max_skew
        );
    }

    /// The persistent executor's invariants for arbitrary worker counts,
    /// block layouts, lag windows and schedules: every block commits
    /// exactly `rounds` updates, and the realised skew respects the
    /// progress-floor lag gate's `max_round_lag + 1` bound.
    #[test]
    fn persistent_counts_exact_and_skew_lag_bounded(
        workers in 1usize..6,
        n in 4usize..48,
        block in 1usize..12,
        lag in 1usize..4,
        sched_kind in 0u64..2,
        seed in 0u64..1000,
        rounds in 1usize..25,
    ) {
        let kernel = Averager { n, block: block.min(n), target: 1.0 };
        let mut x = vec![0.0; n];
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers: workers,
            max_round_lag: lag,
            ..PersistentOptions::default()
        });
        let mut sched: Box<dyn BlockSchedule> = match sched_kind {
            0 => Box::new(RoundRobin),
            _ => Box::new(RandomPermutation::new(seed)),
        };
        let mut ws = PersistentWorkspace::new();
        let (trace, report) = exec.run(
            &kernel,
            &mut x,
            rounds,
            sched.as_mut(),
            &AllowAll,
            &mut NoMonitor,
            &mut ws,
        );
        prop_assert!(trace.updates_per_block.iter().all(|&c| c == rounds));
        prop_assert_eq!(report.global_iterations, rounds);
        prop_assert_eq!(trace.skipped_updates, 0);
        prop_assert!(
            trace.max_skew <= lag + 1,
            "skew {} exceeds the lag bound {}",
            trace.max_skew,
            lag + 1
        );
    }

    #[test]
    fn convergence_for_every_schedule_policy(
        workers in 1usize..8,
        seed in 0u64..500,
    ) {
        let kernel = Averager { n: 32, block: 6, target: -1.25 };
        let mut x: Vec<f64> = (0..32).map(|i| (i as f64).cos() * 5.0).collect();
        let exec = SimExecutor::new(SimOptions { n_workers: workers, jitter: 0.4, seed });
        let mut sched = RandomPermutation::new(seed);
        exec.run(&kernel, &mut x, 80, &mut sched, &AllowAll, |_, _| {});
        for &v in &x {
            prop_assert!((v - -1.25).abs() < 1e-6, "not converged: {v}");
        }
    }
}
