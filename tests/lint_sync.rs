//! The sync-lint pass as a tier-1 test. The rules themselves live in
//! `crates/lint` (`abr_lint`), shared with the `cargo run -p abr-lint`
//! CLI used by CI and by `--fix-table`:
//!
//! 1. No direct `std` atomics outside the `abr_sync` facade.
//! 2. Every `Ordering::` annotation carries a nearby `// sync:`
//!    justification.
//! 3. Every `unsafe` carries a `SAFETY:` comment.
//! 4. The set of atomic call sites conforms to the machine-readable
//!    declared-ordering table in DESIGN.md §7 (both directions: no
//!    undeclared sites in code, no stale rows in the table).
//!
//! Plus the residual lock-freedom scan (`residual.rs` must stay free of
//! locks and blocking primitives). Everything is a raw token scan with
//! no dependencies, so it runs unconditionally in plain `cargo test`.

use std::path::Path;

#[test]
fn sync_lint() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    if let Err(report) = abr_lint::run_all(repo) {
        panic!("{report}");
    }
}
