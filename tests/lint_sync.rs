//! The sync-lint pass: a plain token-scan over the workspace's Rust
//! sources that keeps the memory-model audit trustworthy. Three rules:
//!
//! 1. **No direct `std` atomics outside the facade.** All shared-memory
//!    protocols must go through `abr_sync` (`crates/sync`), or the model
//!    explorer cannot see their operations.
//! 2. **Every memory-ordering annotation is justified.** Each use of an
//!    `Ordering::` constant must carry a `sync:` comment nearby (same
//!    line, the comment block above, or the line or two below for
//!    trailing annotations) saying *why* that ordering suffices.
//! 3. **Every `unsafe` carries a `SAFETY:` comment** in the lines above.
//!
//! The scan is deliberately dumb — raw line tokens, no parsing, no
//! network, no dependencies — so it runs in the tier-1 suite
//! unconditionally. The match patterns are assembled at runtime so this
//! file does not flag itself. `crates/sync` (the facade's own
//! implementation) and `crates/shims` (vendored third-party stubs) are
//! exempt.

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];

fn rust_files(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(root) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            rust_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// The code part of a line: everything before a line comment. Naive
/// (a `//` inside a string literal truncates early), which can only
/// under-report, never false-positive.
fn code_of(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

#[test]
fn sync_lint() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for dir in ["src", "tests", "crates"] {
        rust_files(&repo.join(dir), &mut files);
    }
    files.sort();

    // Assembled so this file's own source never matches them.
    let raw_atomics: String = ["std::", "sync::", "atomic"].concat();
    let ordering_use: String = ["Ordering", "::"].concat();
    // The full comment form: a bare `sync:` would also match the
    // `sync::` segment of a raw std atomics path.
    let sync_comment: String = ["//", " sync", ":"].concat();
    let unsafe_token: String = ["un", "safe"].concat();
    let safety_comment: String = ["SAFETY", ":"].concat();

    let is_word_boundary =
        |b: Option<u8>| b.is_none_or(|c| !(c.is_ascii_alphanumeric() || c == b'_'));

    let mut violations: Vec<String> = Vec::new();
    for path in &files {
        let rel = path.strip_prefix(repo).unwrap_or(path).to_string_lossy().replace('\\', "/");
        let exempt_facade = rel.starts_with("crates/sync/") || rel.starts_with("crates/shims/");
        if exempt_facade {
            continue;
        }
        let Ok(text) = fs::read_to_string(path) else { continue };
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            let code = code_of(line);

            if code.contains(raw_atomics.as_str()) {
                violations.push(format!(
                    "{rel}:{}: direct {raw_atomics} use — go through the abr_sync facade \
                     so the model explorer can see the operation",
                    i + 1
                ));
            }

            if code.contains(ordering_use.as_str()) {
                // Justified when a `sync:` comment sits on the same line,
                // on the line or two below (trailing `^` notes), or in the
                // comment block above the *statement* — found by walking
                // upward through continuation lines (code not ending a
                // statement: multi-line CAS argument lists and the like)
                // and contiguous comment lines, stopping at a blank line
                // or a completed statement.
                let hi = (i + 2).min(lines.len() - 1);
                let mut justified =
                    lines[i..=hi].iter().any(|l| l.contains(sync_comment.as_str()));
                let mut j = i;
                let mut walked = 0;
                while !justified && j > 0 && walked < 16 {
                    j -= 1;
                    walked += 1;
                    let raw = lines[j];
                    if raw.contains(sync_comment.as_str()) {
                        justified = true;
                        break;
                    }
                    let c = code_of(raw).trim_end();
                    if c.trim().is_empty() {
                        if !raw.trim_start().starts_with("//") {
                            break; // blank line: left the statement region
                        }
                        continue; // pure comment line: keep walking
                    }
                    match c.as_bytes().last() {
                        // A finished statement or block above: stop.
                        Some(b';') | Some(b'{') | Some(b'}') => break,
                        // Continuation (`,`, `(`, operators…): keep walking.
                        _ => {}
                    }
                }
                if !justified {
                    violations.push(format!(
                        "{rel}:{}: `{ordering_use}` without a `{sync_comment}` justification \
                         comment nearby",
                        i + 1
                    ));
                }
            }

            let mut from = 0;
            while let Some(off) = code[from..].find(unsafe_token.as_str()) {
                let at = from + off;
                let before = code.as_bytes()[..at].last().copied();
                let after = code.as_bytes().get(at + unsafe_token.len()).copied();
                if is_word_boundary(before) && is_word_boundary(after) {
                    let lo = i.saturating_sub(4);
                    let covered =
                        lines[lo..=i].iter().any(|l| l.contains(safety_comment.as_str()));
                    if !covered {
                        violations.push(format!(
                            "{rel}:{}: `{unsafe_token}` without a `{safety_comment}` comment",
                            i + 1
                        ));
                    }
                    break;
                }
                from = at + unsafe_token.len();
            }
        }
    }

    assert!(
        files.len() > 20,
        "lint walked only {} files — the scan roots moved?",
        files.len()
    );
    assert!(
        violations.is_empty(),
        "sync lint found {} violation(s):\n{}",
        violations.len(),
        violations.join("\n")
    );
}

/// The fused residual-slot path must stay lock-free and keep its
/// publish/reduce ordering pairing: workers publish on every committed
/// block update, so a lock (or a stray SeqCst "just in case") on that
/// path would put the monitor back onto the workers' critical path —
/// the exact cost the fused estimator exists to remove. Token-level,
/// like the main lint: `residual.rs` may not name any blocking
/// primitive, must stamp its epoch with `Release`, and must read it
/// with `Acquire` (the pairing its module doc promises the model
/// audit).
#[test]
fn residual_slots_stay_lock_free() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = fs::read_to_string(repo.join("crates/gpu/src/residual.rs"))
        .expect("crates/gpu/src/residual.rs must exist — the fused monitor depends on it");
    let code: String =
        text.lines().map(code_of).collect::<Vec<_>>().join("\n");
    // Assembled at runtime so this file's own source never matches the
    // main lint's `Ordering::` scan.
    let ordering: String = ["Ordering", "::"].concat();
    for banned in
        ["Mutex", "RwLock", "parking_lot", ".lock()", "Condvar", &[&ordering, "SeqCst"].concat()]
    {
        assert!(
            !code.contains(banned),
            "residual.rs uses `{banned}` — the slot publish/reduce path must stay lock-free"
        );
    }
    let release = [&ordering, "Release"].concat();
    let acquire = [&ordering, "Acquire"].concat();
    assert!(
        code.contains(&release) && code.contains(&acquire),
        "residual.rs lost its Release-publish / Acquire-reduce pairing"
    );
}
