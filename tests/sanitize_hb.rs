//! Mutation tests for the happens-before sanitizer on **real threads**
//! (`--features sanitize`).
//!
//! `tests/model_hb.rs` proves the shadow catches deleted publication
//! edges under the explorer's virtual threads; this suite proves the
//! same instrumentation works wired into the production atomics, with
//! OS threads and real memory. The shapes are the same three protocol
//! mutations (Relaxed-ed residual publish, Relaxed-ed stop flag,
//! skipped halo copy) — detection is deterministic because each reader
//! *spins until it observes* the flag or epoch, and the facade fires
//! release-side hooks before the real operation and acquire-side hooks
//! after it: a load that observed a release implies the release hook
//! already ran.
//!
//! The final test runs a real persistent-executor solve inside a
//! sanitizer session: the full data plane (component commits under the
//! in-flight flag, scratch claims, fused residual publishes) must come
//! out race-clean.
#![cfg(feature = "sanitize")]

use block_async_relax::core::{AsyncBlockSolver, ExecutorKind, SolveOptions};
use block_async_relax::gpu::{AtomicF64Vec, CommStrategy, HaloExchange, ResidualSlots, ThreadedOptions};
use block_async_relax::sparse::gen::laplacian_2d_5pt;
use block_async_relax::sparse::RowPartition;
use block_async_relax::sync::hb;
use block_async_relax::sync::{Ordering, SyncBool, SyncU64, SyncUsize};
use std::sync::Arc;
use std::thread;

/// The `ResidualSlots::publish`/`reduce` shape on real threads; the
/// epoch-bump ordering is the mutation point.
fn residual_publish_shape(publish_ord: Ordering) -> Vec<hb::Race> {
    let (_, races) = hb::session(|| {
        let val = Arc::new(SyncU64::new(0));
        let epoch = Arc::new(SyncUsize::new(0));
        let (v2, e2) = (Arc::clone(&val), Arc::clone(&epoch));
        let w = thread::spawn(move || {
            hb::on_data_write(hb::id_of(&*v2), hb::Access::WriteExcl);
            // sync: Relaxed value store; the epoch bump below is the
            // publication edge (when the audited ordering is Release).
            v2.store(2.5f64.to_bits(), Ordering::Relaxed);
            // sync: test fixture — the ordering under audit.
            e2.fetch_add(1, publish_ord);
        });
        // sync: Acquire pairs with the publish bump when it is Release;
        // spinning until the epoch is visible makes detection of the
        // mutated variant deterministic.
        while epoch.load(Ordering::Acquire) == 0 {
            thread::yield_now();
        }
        hb::on_data_read(hb::id_of(&*val), hb::Access::ReadPublished);
        // sync: Relaxed value read behind the epoch edge.
        let _ = val.load(Ordering::Relaxed);
        w.join().unwrap();
    });
    races
}

/// The stop-watermark shape on real threads; the flag pairing is the
/// mutation point.
fn stop_watermark_shape(store_ord: Ordering, load_ord: Ordering) -> Vec<hb::Race> {
    let (_, races) = hb::session(|| {
        let rec = Arc::new(SyncUsize::new(0));
        let stop = Arc::new(SyncBool::new(false));
        let (r2, s2) = (Arc::clone(&rec), Arc::clone(&stop));
        let w = thread::spawn(move || {
            // sync: test fixture — the ordering under audit.
            while !s2.load(load_ord) {
                thread::yield_now();
            }
            hb::on_data_read(hb::id_of(&*r2), hb::Access::ReadPublished);
            // sync: Relaxed payload read, ordered by the flag's edge
            // when the audited pair is Release/Acquire.
            let _ = r2.load(Ordering::Relaxed);
        });
        hb::on_data_write(hb::id_of(&*rec), hb::Access::WriteExcl);
        // sync: Relaxed payload store, published by the flag store below.
        rec.store(7, Ordering::Relaxed);
        // sync: test fixture — the ordering under audit.
        stop.store(true, store_ord);
        w.join().unwrap();
    });
    races
}

/// The halo elect → copy → stamp shape on real threads; the copy is the
/// mutation point.
fn halo_refresh_shape(skip_copy: bool) -> Vec<hb::Race> {
    let (_, races) = hb::session(|| {
        let epoch = Arc::new(SyncUsize::new(0));
        let stage = Arc::new(SyncU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (e, s) = (Arc::clone(&epoch), Arc::clone(&stage));
                thread::spawn(move || {
                    // sync: election needs RMW atomicity only, as in halo.rs.
                    if e.fetch_max(1, Ordering::Relaxed) < 1 {
                        let region = hb::id_of(&*s);
                        hb::on_elect(region);
                        if !skip_copy {
                            hb::on_data_write(hb::id_of(&*s), hb::Access::WriteRacy);
                            // sync: racy stage copy, mixed-epoch reads allowed.
                            s.store(42, Ordering::Relaxed);
                            hb::on_copy(region);
                        }
                        hb::on_stamp(region);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    races
}

#[test]
fn release_publish_is_race_clean() {
    // sync: the shipped publication edge — Release epoch bump.
    let races = residual_publish_shape(Ordering::Release);
    assert!(races.is_empty(), "clean publish flagged: {races:?}");
}

#[test]
fn relaxed_publish_mutation_is_caught() {
    // sync: deliberate mutation — the publication edge deleted.
    let races = residual_publish_shape(Ordering::Relaxed);
    assert!(!races.is_empty(), "mutated publish not caught");
    assert!(races.iter().all(|r| r.kind == hb::RaceKind::UnsyncedPublishedRead));
}

#[test]
fn release_acquire_stop_flag_is_race_clean() {
    // sync: the shipped pairing — Release store / Acquire loads.
    let races = stop_watermark_shape(Ordering::Release, Ordering::Acquire);
    assert!(races.is_empty(), "clean stop flag flagged: {races:?}");
}

#[test]
fn relaxed_stop_flag_mutation_is_caught() {
    // sync: deliberate mutation — the all-Relaxed flag under audit.
    let races = stop_watermark_shape(Ordering::Relaxed, Ordering::Relaxed);
    assert!(!races.is_empty(), "mutated stop flag not caught");
    assert!(races.iter().all(|r| r.kind == hb::RaceKind::UnsyncedPublishedRead));
}

#[test]
fn halo_refresh_with_copy_is_race_clean() {
    let races = halo_refresh_shape(false);
    assert!(races.is_empty(), "clean refresh flagged: {races:?}");
}

#[test]
fn skipped_halo_copy_mutation_is_caught() {
    let races = halo_refresh_shape(true);
    assert!(!races.is_empty(), "skipped copy not caught");
    assert!(races.iter().all(|r| r.kind == hb::RaceKind::StampWithoutCopy));
}

/// The real `ResidualSlots` protocol on real threads: concurrent
/// publishers against a reducing monitor, race-clean.
#[test]
fn real_residual_slots_are_race_clean() {
    let (_, races) = hb::session(|| {
        let mut slots = ResidualSlots::new();
        slots.reset(4);
        let slots = Arc::new(slots);
        let handles: Vec<_> = (0..2)
            .map(|w| {
                let s2 = Arc::clone(&slots);
                thread::spawn(move || {
                    for round in 0..50 {
                        s2.publish(2 * w, round as f64);
                        s2.publish(2 * w + 1, round as f64);
                    }
                })
            })
            .collect();
        loop {
            if slots.reduce().is_some() {
                break;
            }
            thread::yield_now();
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(slots.reduce().is_some());
    });
    assert!(races.is_empty(), "real ResidualSlots flagged: {races:?}");
}

/// The real `HaloExchange` on real threads: per-device election races,
/// concurrent copies and stamps, race-clean.
#[test]
fn real_halo_exchange_is_race_clean() {
    let (_, races) = hb::session(|| {
        let x0: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let live = Arc::new(AtomicF64Vec::from_slice(&x0));
        let h = Arc::new(
            HaloExchange::for_strategy(CommStrategy::Amc, &[0, 8, 16], &x0, 2).unwrap(),
        );
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let (h2, l2) = (Arc::clone(&h), Arc::clone(&live));
                thread::spawn(move || {
                    let d = w % 2;
                    for round in 1..20 {
                        h2.maybe_refresh(d, round, &l2, round);
                    }
                })
            })
            .collect();
        for hd in handles {
            hd.join().unwrap();
        }
        assert!(h.refreshes() > 0);
    });
    assert!(races.is_empty(), "real HaloExchange flagged: {races:?}");
}

/// A full persistent-executor solve inside a sanitizer session: block
/// commits under the in-flight flag, scratch claims, fused residual
/// publishes and the stop protocol all run race-clean end to end.
#[test]
fn persistent_solve_is_race_clean() {
    let a = laplacian_2d_5pt(8); // 64 rows: small enough for full (unsampled) tracking
    let n = a.n_rows();
    let b = a.mul_vec(&vec![1.0; n]).expect("square");
    let x0 = vec![0.0; n];
    let p = RowPartition::uniform(n, 8).expect("partition");
    let opts = SolveOptions { max_iters: 5_000, tol: 1e-8, record_history: false, check_every: 5 };
    let solver = AsyncBlockSolver {
        executor: ExecutorKind::Threaded(ThreadedOptions { n_workers: 3, snapshot_rounds: false }),
        ..AsyncBlockSolver::async_k(3)
    };
    let (result, races) = hb::session(|| solver.solve(&a, &b, &x0, &p, &opts).expect("solve"));
    assert!(result.converged, "solve did not converge under the sanitizer");
    assert!(races.is_empty(), "persistent solve flagged: {races:?}");
}
