//! Full-scale shape verification: the paper's headline claims, checked on
//! the paper-sized matrices. These run minutes, so they are `#[ignore]`d
//! from the default test pass; run them with
//!
//! ```text
//! cargo test --release --test paper_shapes_full -- --ignored
//! ```
//!
//! EXPERIMENTS.md records their output.

use block_async_relax::exp::experiments::{convergence_figs, fig11, fig9, timing_tables};
use block_async_relax::exp::{ExpOptions, Scale};

fn full_opts() -> ExpOptions {
    ExpOptions { scale: Scale::Full, runs: 8, seed: 42 }
}

#[test]
#[ignore = "full paper scale; minutes of runtime"]
fn fig7_async5_roughly_doubles_gauss_seidel_on_fv_family() {
    let figs = convergence_figs::run(&full_opts()).expect("figures");
    for name in ["(fv1)", "(fv2)"] {
        let f = figs.fig7.iter().find(|f| f.title.contains(name)).expect("panel");
        let gs = &f.series[0];
        let a5 = &f.series[1];
        // iterations to reach 1e-10
        let it = |s: &block_async_relax::exp::Series| {
            s.points.iter().find(|&&(_, r)| r <= 1e-10).map(|&(k, _)| k)
        };
        let (k_gs, k_a5) = (it(gs).expect("GS converges"), it(a5).expect("async-5 converges"));
        let speedup = k_gs / k_a5;
        assert!(
            (1.4..4.0).contains(&speedup),
            "{name}: async-5 vs GS iteration speedup {speedup} (paper: ~2x)"
        );
    }
}

#[test]
#[ignore = "full paper scale; minutes of runtime"]
fn fig6_gs_about_twice_jacobi_and_async1_tracks_jacobi() {
    let figs = convergence_figs::run(&full_opts()).expect("figures");
    let f = figs.fig6.iter().find(|f| f.title.contains("(fv1)")).expect("panel");
    let it = |s: &block_async_relax::exp::Series, tol: f64| {
        s.points.iter().find(|&&(_, r)| r <= tol).map(|&(k, _)| k)
    };
    let k_gs = it(&f.series[0], 1e-8).expect("GS");
    let k_j = it(&f.series[1], 1e-8).expect("Jacobi");
    let k_a1 = it(&f.series[2], 1e-8).expect("async-1");
    let gs_speedup = k_j / k_gs;
    assert!((1.5..3.0).contains(&gs_speedup), "GS vs Jacobi speedup {gs_speedup}");
    let drift = k_a1 / k_j;
    assert!((0.7..1.6).contains(&drift), "async-1 must track Jacobi, ratio {drift}");
}

#[test]
#[ignore = "full paper scale; minutes of runtime"]
fn table5_full_gpu_beats_cpu_by_factor_5_to_10() {
    let t = timing_tables::table5(&full_opts()).expect("table");
    for row in &t.rows {
        let gs: f64 = row[1].parse().expect("number");
        let a5: f64 = row[3].parse().expect("number");
        let speedup = gs / a5;
        assert!(
            (3.0..25.0).contains(&speedup),
            "{}: CPU/GPU speedup {speedup} out of the paper's 5-10x band",
            row[0]
        );
    }
}

#[test]
#[ignore = "full paper scale; minutes of runtime"]
fn fig9_full_crossovers_match_paper() {
    use block_async_relax::exp::experiments::fig9::time_to_accuracy;
    let figs = fig9::run(&full_opts()).expect("figures");
    let find = |title: &str| figs.iter().find(|f| f.title.contains(title)).expect("panel");
    let series = |f: &block_async_relax::exp::report::Figure, label: &str| {
        f.series.iter().find(|s| s.label == label).expect("series").clone()
    };

    // fv1: async-(5) beats Jacobi and GS in time; CG beats async-(5).
    let fv1 = find("(fv1)");
    let target = 1e-10;
    let t_gs = time_to_accuracy(&series(fv1, "Gauss-Seidel"), target).expect("GS");
    let t_j = time_to_accuracy(&series(fv1, "Jacobi"), target).expect("Jacobi");
    let t_a5 = time_to_accuracy(&series(fv1, "async-(5)"), target).expect("async-5");
    let t_cg = time_to_accuracy(&series(fv1, "CG"), target).expect("CG");
    assert!(t_a5 < t_j, "fv1: async-5 {t_a5} must beat Jacobi {t_j}");
    assert!(t_a5 < t_gs / 2.0, "fv1: async-5 {t_a5} must be far ahead of GS {t_gs}");
    assert!(t_cg < t_a5, "fv1: CG {t_cg} must beat async-5 {t_a5}");

    // Trefethen_2000: the paper shows async-(5) superior to CG at every
    // accuracy. Our CG baseline is diagonally preconditioned (required to
    // reproduce the fv1/fv3 panels), and on the *exact* Trefethen matrix
    // the prime diagonal makes that preconditioner unbeatable — so the
    // reproduction target is "async-(5) competitive with CG" (within
    // 15 %), and clearly ahead of Jacobi. Documented in EXPERIMENTS.md.
    let tref = find("(Trefethen_2000)");
    let t_a5 = time_to_accuracy(&series(tref, "async-(5)"), target).expect("async-5");
    let t_cg = time_to_accuracy(&series(tref, "CG"), target).expect("CG");
    let t_j = time_to_accuracy(&series(tref, "Jacobi"), target).expect("Jacobi");
    assert!(t_a5 < 1.15 * t_cg, "Trefethen: async-5 {t_a5} must stay with CG {t_cg}");
    assert!(t_a5 < t_j, "Trefethen: async-5 {t_a5} must beat Jacobi {t_j}");

    // fv3: CG far ahead of the relaxation methods.
    let fv3 = find("(fv3)");
    let coarse = 1e-6;
    let t_cg = time_to_accuracy(&series(fv3, "CG"), coarse).expect("CG");
    let t_a5 = time_to_accuracy(&series(fv3, "async-(5)"), coarse).expect("async-5");
    assert!(t_cg * 3.0 < t_a5, "fv3: CG {t_cg} must be far ahead of async-5 {t_a5}");
}

#[test]
#[ignore = "full paper scale; minutes of runtime"]
fn fig11_full_shape() {
    let t = fig11::run(&full_opts()).expect("table");
    let amc: Vec<f64> = t.rows[0][1..].iter().map(|s| s.parse().expect("number")).collect();
    assert!(amc[1] < 0.65 * amc[0], "AMC 2 GPUs nearly halves: {amc:?}");
    assert!(amc[2] > amc[1], "AMC 3 GPUs slower (QPI): {amc:?}");
    assert!(amc[3] < amc[2], "AMC 4 GPUs recover: {amc:?}");
    assert!(amc[3] < amc[1], "AMC 4 GPUs outperform 2, modestly: {amc:?}");
    assert!(amc[3] > 0.5 * amc[1], "speedup stays well under 2x: {amc:?}");
    for row in &t.rows[1..] {
        let v: Vec<f64> = row[1..].iter().map(|s| s.parse().expect("number")).collect();
        assert!(v[1] < v[0] && v[1] > 0.5 * v[0], "{}: modest gains only: {v:?}", row[0]);
    }
}
