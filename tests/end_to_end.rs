//! Cross-crate integration tests: every solver on every (small-scale)
//! Table 1 system, executors against each other, faults, multi-GPU, and
//! the multigrid extension — the workspace exercised end to end.

use block_async_relax::core::scaled::damped_async_solver;
use block_async_relax::fault::FailureScenario;
use block_async_relax::prelude::*;
use block_async_relax::sparse::gen::{unit_solution_rhs, TestMatrix};

fn small_system(which: TestMatrix) -> (CsrMatrix, Vec<f64>, Vec<f64>) {
    let a = which.build_small().expect("generator");
    let b = unit_solution_rhs(&a);
    let x0 = vec![0.0; a.n_rows()];
    (a, b, x0)
}

fn convergent_matrices() -> impl Iterator<Item = TestMatrix> {
    TestMatrix::ALL
        .into_iter()
        .filter(|&m| m != TestMatrix::S1rmt3m1)
}

#[test]
fn every_convergent_system_solved_by_every_stationary_method() {
    for which in convergent_matrices() {
        let (a, b, x0) = small_system(which);
        let n = a.n_rows();
        let opts = SolveOptions::to_tolerance(1e-9, 500_000);

        let j = jacobi(&a, &b, &x0, &opts).expect("jacobi");
        assert!(j.converged, "{}: jacobi residual {}", which.name(), j.final_residual);

        let g = gauss_seidel(&a, &b, &x0, &opts).expect("gs");
        assert!(g.converged, "{}: gs residual {}", which.name(), g.final_residual);
        assert!(
            g.iterations <= j.iterations,
            "{}: GS ({}) must need no more sweeps than Jacobi ({})",
            which.name(),
            g.iterations,
            j.iterations
        );

        let p = RowPartition::uniform(n, 32.min(n)).expect("partition");
        let a5 = AsyncBlockSolver::async_k(5).solve(&a, &b, &x0, &p, &opts).expect("async");
        assert!(a5.converged, "{}: async residual {}", which.name(), a5.final_residual);

        // All agree on the (known, all-ones) solution. The error bound is
        // residual * cond(A); fv3's deliberately graded mesh has
        // cond ~ 1e5 even at small scale, hence the loose threshold.
        for (label, x) in [("jacobi", &j.x), ("gs", &g.x), ("async5", &a5.x)] {
            let err = x.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max);
            assert!(err < 1e-3, "{} {label}: max error {err}", which.name());
        }
    }
}

#[test]
fn cg_solves_every_spd_system_including_the_jacobi_divergent_one() {
    for which in TestMatrix::ALL {
        let (a, b, x0) = small_system(which);
        let opts = SolveOptions::to_tolerance(1e-9, 100_000);
        let r = conjugate_gradient(&a, &b, &x0, &opts).expect("cg");
        assert!(r.converged, "{}: cg residual {}", which.name(), r.final_residual);
    }
}

#[test]
fn damped_async_handles_the_divergent_structural_system() {
    let (a, b, x0) = small_system(TestMatrix::S1rmt3m1);
    let n = a.n_rows();
    let p = RowPartition::uniform(n, 32).expect("partition");

    let plain = AsyncBlockSolver::async_k(5)
        .solve(&a, &b, &x0, &p, &SolveOptions::fixed_iterations(40))
        .expect("async");
    assert!(plain.final_residual > 1.0, "plain async must diverge on s1rmt3m1");

    let damped = damped_async_solver(&a, 5).expect("tau estimate");
    let r = damped
        .solve(&a, &b, &x0, &p, &SolveOptions::to_tolerance(1e-6, 500_000))
        .expect("damped async");
    assert!(r.converged, "damped async residual {}", r.final_residual);
}

#[test]
fn sim_and_threaded_executors_agree_on_the_solution() {
    let (a, b, x0) = small_system(TestMatrix::Fv1);
    let n = a.n_rows();
    let p = RowPartition::uniform(n, 32).expect("partition");
    let opts = SolveOptions::to_tolerance(1e-9, 200_000);

    let sim = AsyncBlockSolver::async_k(5).solve(&a, &b, &x0, &p, &opts).expect("sim");
    let thr = AsyncBlockSolver {
        executor: ExecutorKind::Threaded(ThreadedOptions::default()),
        ..AsyncBlockSolver::async_k(5)
    }
    .solve(&a, &b, &x0, &p, &opts)
    .expect("threaded");

    assert!(sim.converged && thr.converged);
    let diff = sim
        .x
        .iter()
        .zip(&thr.x)
        .map(|(s, t)| (s - t).abs())
        .fold(0.0f64, f64::max);
    assert!(diff < 1e-6, "executors disagree by {diff}");
}

#[test]
fn multi_gpu_matches_single_gpu_solution() {
    let (a, b, x0) = small_system(TestMatrix::Trefethen2000);
    let opts = SolveOptions::to_tolerance(1e-10, 10_000);
    let mut xs = Vec::new();
    for g in [1usize, 4] {
        let mut solver = MultiGpuSolver::supermicro(g, CommStrategy::Amc);
        solver.thread_block_size = 16;
        let r = solver.solve(&a, &b, &x0, &opts).expect("solve");
        assert!(r.solve.converged, "{g} GPUs: {}", r.solve.final_residual);
        xs.push(r.solve.x);
    }
    let diff = xs[0]
        .iter()
        .zip(&xs[1])
        .map(|(p, q)| (p - q).abs())
        .fold(0.0f64, f64::max);
    assert!(diff < 1e-7, "device counts disagree by {diff}");
}

#[test]
fn failed_then_recovered_solve_reaches_the_true_solution() {
    let (a, b, x0) = small_system(TestMatrix::Fv1);
    let n = a.n_rows();
    let p = RowPartition::uniform(n, 32).expect("partition");
    let scenario = FailureScenario::paper_default(Some(15), 3).build(n);
    let r = AsyncBlockSolver::async_k(5)
        .solve_filtered(&a, &b, &x0, &p, &SolveOptions::fixed_iterations(400), &scenario)
        .expect("solve");
    let err = r.x.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max);
    assert!(err < 1e-6, "recovered run max error {err}");
}

#[test]
fn multigrid_with_async_smoother_solves_fv3_class_problem() {
    use block_async_relax::core::multigrid::Multigrid;
    use block_async_relax::core::smoother::AsyncSmoother;
    let a = block_async_relax::sparse::gen::laplacian_2d_9pt(24);
    let n = a.n_rows();
    let b = unit_solution_rhs(&a);
    let mg = Multigrid::new(&a, AsyncSmoother { block_size: 36, ..Default::default() }, 24)
        .expect("hierarchy");
    let r = mg
        .solve(&b, &vec![0.0; n], &SolveOptions::to_tolerance(1e-9, 100))
        .expect("solve");
    assert!(r.converged, "residual {}", r.final_residual);
    assert!(r.iterations < 60, "{} cycles", r.iterations);
}

#[test]
fn matrix_market_roundtrip_preserves_solvability() {
    let (a, b, x0) = small_system(TestMatrix::Trefethen2000);
    let mut buf = Vec::new();
    block_async_relax::sparse::io::write_matrix_market(&a, &mut buf).expect("write");
    let a2 = block_async_relax::sparse::io::read_matrix_market(&buf[..]).expect("read");
    assert_eq!(a, a2);
    let r = jacobi(&a2, &b, &x0, &SolveOptions::to_tolerance(1e-9, 10_000)).expect("solve");
    assert!(r.converged);
}

/// The scaling pipeline end to end at reduced n: generate the screened
/// FV system, stream it out to MatrixMarket, ingest it back through the
/// chunk-parallel reader, compile the plan in parallel, and solve on the
/// persistent executor with fused residual monitoring — every stage of
/// the multi-million-row path, verified against an independent residual.
#[test]
fn ingest_to_solve_pipeline_on_generated_matrix_market() {
    use block_async_relax::core::async_block::AsyncJacobiKernel;
    use block_async_relax::core::convergence::relative_residual;
    use block_async_relax::core::{LocalSweep, ResidualMonitor};
    use block_async_relax::gpu::kernel::AllowAll;
    use block_async_relax::gpu::schedule::RoundRobin;
    use block_async_relax::gpu::{PersistentExecutor, PersistentOptions, PersistentWorkspace};
    use block_async_relax::sparse::gen::fv;
    use block_async_relax::sparse::io::{read_matrix_market_path, write_matrix_market};

    let a = fv(24, 1.0, 0.0).expect("fv generator"); // n = 576
    let path = std::env::temp_dir().join(format!(
        "abr-ingest-e2e-{}-{:?}.mtx",
        std::process::id(),
        std::thread::current().id()
    ));
    {
        let f = std::fs::File::create(&path).expect("create temp mtx");
        write_matrix_market(&a, std::io::BufWriter::new(f)).expect("write");
    }
    let a2 = read_matrix_market_path(&path).expect("streaming ingest");
    std::fs::remove_file(&path).ok();
    assert_eq!(a, a2, "ingest must reproduce the generated system exactly");

    let n = a2.n_rows();
    let rhs = a2.mul_vec(&vec![1.0; n]).expect("square");
    let p = RowPartition::uniform(n, 48).expect("partition");
    let kernel = AsyncJacobiKernel::with_sweep(&a2, &rhs, &p, 5, 1.0, LocalSweep::Jacobi)
        .expect("kernel");
    let exec = PersistentExecutor::new(PersistentOptions {
        n_workers: 4,
        ..PersistentOptions::default()
    });
    let tol = 1e-8;
    let mut monitor = ResidualMonitor::new(&a2, &rhs, tol, 1);
    let mut ws = PersistentWorkspace::new();
    let mut x = vec![0.0; n];
    let (_, report) =
        exec.run(&kernel, &mut x, 20_000, &mut RoundRobin, &AllowAll, &mut monitor, &mut ws);
    assert!(report.stopped_at.is_some(), "persistent solve must converge");
    let rr = relative_residual(&a2, &rhs, &x);
    assert!(rr <= tol, "pipeline stopped with residual {rr} above {tol}");
}
