//! Mutation tests for the happens-before sanitizer under the schedule
//! explorer.
//!
//! The HB shadow (`abr_sync::hb`) exists to catch *missing
//! synchronization on the data plane* — a payload write whose
//! publication edge was deleted, an exclusive region written without the
//! hand-off that makes it exclusive, a halo stamp published for a copy
//! that never ran. A sanitizer is only trustworthy if it demonstrably
//! has teeth, so each test here runs a protocol shape twice through the
//! explorer: the shipped orderings must come out race-clean across every
//! explored schedule, and a seeded mutation (`Release` → `Relaxed`,
//! skipped copy) must be *caught*. The shapes mirror the real protocols
//! (`residual.rs` publish/reduce, the `persistent.rs` stop watermark,
//! the `halo.rs` elect → copy → stamp refresh) with the ordering under
//! audit as a parameter, exactly like `tests/model_stop_watermark.rs`.
//!
//! `hb::session` goes *inside* the explore body: each explored schedule
//! gets a fresh shadow, so allocation-address reuse across runs cannot
//! leak stale evidence.
//!
//! Run with `cargo test --features model`.
#![cfg(feature = "model")]

use block_async_relax::gpu::{AtomicF64Vec, CommStrategy, HaloExchange, ResidualSlots};
use block_async_relax::sync::hb;
use block_async_relax::sync::model::{explore_seeded, spawn};
use block_async_relax::sync::{Ordering, SyncBool, SyncU64, SyncUsize};
use std::sync::{Arc, Mutex};

/// Runs `shape` once per explored schedule inside a fresh `hb::session`
/// and returns every race kind detected across all runs.
fn explore_with_sessions(
    seed: u64,
    runs: usize,
    shape: impl Fn() + Sync,
) -> Vec<hb::RaceKind> {
    let kinds = Mutex::new(Vec::new());
    explore_seeded(seed, runs, || {
        let (_, races) = hb::session(&shape);
        kinds.lock().unwrap().extend(races.iter().map(|r| r.kind));
    })
    .assert_ok();
    kinds.into_inner().unwrap()
}

/// The `ResidualSlots::publish`/`reduce` shape: a worker stores value
/// bits `Relaxed` then bumps the slot epoch with `publish_ord`; the
/// monitor spins on an `Acquire` epoch load, then reads the value bits.
/// The shadow hooks mirror the instrumentation in `residual.rs`.
fn residual_publish_shape(publish_ord: Ordering) {
    let val = Arc::new(SyncU64::new(0));
    let epoch = Arc::new(SyncUsize::new(0));
    let (v2, e2) = (Arc::clone(&val), Arc::clone(&epoch));
    let w = spawn(move || {
        hb::on_data_write(hb::id_of(&*v2), hb::Access::WriteExcl);
        // sync: Relaxed value store; the epoch bump below is the
        // publication edge (when the audited ordering is Release).
        v2.store(2.5f64.to_bits(), Ordering::Relaxed);
        // sync: test fixture — the ordering under audit.
        e2.fetch_add(1, publish_ord);
    });
    // The monitor runs on the body's virtual thread.
    // sync: Acquire pairs with the publish bump above when it is Release.
    while epoch.load(Ordering::Acquire) == 0 {}
    hb::on_data_read(hb::id_of(&*val), hb::Access::ReadPublished);
    // sync: Relaxed value read; visibility rests on the epoch edge, and
    // under the mutated publish the model may legally return stale bits —
    // which is exactly the condition the shadow must flag.
    let _ = val.load(Ordering::Relaxed);
    w.join();
}

/// The stop-watermark shape: the monitor records the watermark (a
/// data-plane payload) and raises the stop flag with `store_ord`; a
/// worker that observes the flag with `load_ord` reads the watermark.
fn stop_watermark_shape(store_ord: Ordering, load_ord: Ordering) {
    let rec = Arc::new(SyncUsize::new(0));
    let stop = Arc::new(SyncBool::new(false));
    let (r2, s2) = (Arc::clone(&rec), Arc::clone(&stop));
    let w = spawn(move || loop {
        // sync: test fixture — the ordering under audit.
        if s2.load(load_ord) {
            hb::on_data_read(hb::id_of(&*r2), hb::Access::ReadPublished);
            // sync: Relaxed payload read; ordered by the flag's edge
            // when the audited pair is Release/Acquire.
            let _ = r2.load(Ordering::Relaxed);
            return;
        }
    });
    hb::on_data_write(hb::id_of(&*rec), hb::Access::WriteExcl);
    // sync: Relaxed payload store, published by the flag store below.
    rec.store(7, Ordering::Relaxed);
    // sync: test fixture — the ordering under audit.
    stop.store(true, store_ord);
    w.join();
}

/// The halo refresh shape: two workers race a `fetch_max` election; the
/// winner copies into the stage (declared racy) and stamps — unless
/// `skip_copy` mutates the copy away.
fn halo_refresh_shape(skip_copy: bool) {
    let epoch = Arc::new(SyncUsize::new(0));
    let stage = Arc::new(SyncU64::new(0));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let (e, s) = (Arc::clone(&epoch), Arc::clone(&stage));
            spawn(move || {
                // sync: election needs RMW atomicity only (the real
                // election in halo.rs is the same Relaxed fetch_max).
                if e.fetch_max(1, Ordering::Relaxed) < 1 {
                    let region = hb::id_of(&*s);
                    hb::on_elect(region);
                    if !skip_copy {
                        hb::on_data_write(hb::id_of(&*s), hb::Access::WriteRacy);
                        // sync: racy stage copy, mixed-epoch reads allowed.
                        s.store(42, Ordering::Relaxed);
                        hb::on_copy(region);
                    }
                    hb::on_stamp(region);
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
}

/// The shipped residual publish (Release bump) is race-clean everywhere.
#[test]
fn release_publish_is_race_clean() {
    let kinds = explore_with_sessions(0x4e51d, 300, || {
        // sync: the shipped publication edge — Release epoch bump.
        residual_publish_shape(Ordering::Release)
    });
    assert!(kinds.is_empty(), "clean publish flagged: {kinds:?}");
}

/// Mutation: downgrading the epoch bump to `Relaxed` deletes the
/// publication edge — the shadow must report the published read as
/// unsynchronized.
#[test]
fn relaxed_publish_mutation_is_caught() {
    let kinds = explore_with_sessions(0x4e51e, 300, || {
        // sync: deliberate mutation — the publication edge deleted.
        residual_publish_shape(Ordering::Relaxed)
    });
    assert!(!kinds.is_empty(), "mutated publish not caught");
    assert!(
        kinds.iter().all(|k| *k == hb::RaceKind::UnsyncedPublishedRead),
        "unexpected race kinds: {kinds:?}"
    );
}

/// The shipped stop-flag pairing (Release/Acquire) is race-clean.
#[test]
fn release_acquire_stop_flag_is_race_clean() {
    let kinds = explore_with_sessions(0x57_0c, 300, || {
        // sync: the shipped pairing — Release store / Acquire loads.
        stop_watermark_shape(Ordering::Release, Ordering::Acquire)
    });
    assert!(kinds.is_empty(), "clean stop flag flagged: {kinds:?}");
}

/// Mutation: an all-`Relaxed` stop flag lets the worker read the
/// recorded watermark with no happens-before path from its write.
#[test]
fn relaxed_stop_flag_mutation_is_caught() {
    let kinds = explore_with_sessions(0x57_0d, 300, || {
        // sync: deliberate mutation — the all-Relaxed flag under audit.
        stop_watermark_shape(Ordering::Relaxed, Ordering::Relaxed)
    });
    assert!(!kinds.is_empty(), "mutated stop flag not caught");
    assert!(
        kinds.iter().all(|k| *k == hb::RaceKind::UnsyncedPublishedRead),
        "unexpected race kinds: {kinds:?}"
    );
}

/// The full elect → copy → stamp refresh is race-clean.
#[test]
fn halo_refresh_with_copy_is_race_clean() {
    let kinds = explore_with_sessions(0xa10, 300, || halo_refresh_shape(false));
    assert!(kinds.is_empty(), "clean refresh flagged: {kinds:?}");
}

/// Mutation: a winner that stamps without performing its stage copy is
/// reported — a stamp must never vouch for data that was not staged.
#[test]
fn skipped_halo_copy_mutation_is_caught() {
    let kinds = explore_with_sessions(0xa11, 300, || halo_refresh_shape(true));
    assert!(!kinds.is_empty(), "skipped copy not caught");
    assert!(
        kinds.iter().all(|k| *k == hb::RaceKind::StampWithoutCopy),
        "unexpected race kinds: {kinds:?}"
    );
}

/// The real `ResidualSlots` (not the shape) runs race-clean under the
/// explorer with a concurrent publisher and reducing monitor.
#[test]
fn real_residual_slots_are_race_clean() {
    let kinds = explore_with_sessions(0x51075, 200, || {
        let mut slots = ResidualSlots::new();
        slots.reset(2);
        let slots = Arc::new(slots);
        let s2 = Arc::clone(&slots);
        let w = spawn(move || {
            s2.publish(0, 1.0);
            s2.publish(1, 2.0);
        });
        loop {
            if let Some(sum) = slots.reduce() {
                assert_eq!(sum, 3.0);
                break;
            }
        }
        w.join();
    });
    assert!(kinds.is_empty(), "real ResidualSlots flagged: {kinds:?}");
}

/// The real `HaloExchange` DC refresh runs race-clean: concurrent
/// workers racing the per-device elections, winners copying and
/// stamping, all stage writes declared racy.
#[test]
fn real_halo_exchange_is_race_clean() {
    let kinds = explore_with_sessions(0x4a10, 150, || {
        let x0 = [1.0, 2.0, 3.0, 4.0];
        let live = Arc::new(AtomicF64Vec::from_slice(&x0));
        let h = Arc::new(
            HaloExchange::for_strategy(CommStrategy::Dc, &[0, 2, 4], &x0, 1).unwrap(),
        );
        let handles: Vec<_> = (0..2)
            .map(|d| {
                let (h2, l2) = (Arc::clone(&h), Arc::clone(&live));
                spawn(move || {
                    for round in 1..3 {
                        h2.maybe_refresh(d, round, &l2, round);
                    }
                })
            })
            .collect();
        for hd in handles {
            hd.join();
        }
    });
    assert!(kinds.is_empty(), "real HaloExchange flagged: {kinds:?}");
}
