//! Acceptance tests for the persistent-worker executor: the threaded
//! solver path must reach the same tolerance as the discrete-event
//! simulator on the paper's model problems; the asynchronous convergence
//! monitor must halt the workers strictly before the round budget when
//! the tolerance is loose; and a solve must spawn each worker exactly
//! once and perform no full-vector copies after start beyond the
//! monitor's reused snapshot buffer (watched through the workspace
//! fingerprint, in the style of `tests/block_plan_equivalence.rs`).

use block_async_relax::core::async_block::AsyncJacobiKernel;
use block_async_relax::core::{AsyncBlockSolver, ExecutorKind, ResidualMonitor, SolveOptions};
use block_async_relax::gpu::kernel::AllowAll;
use block_async_relax::gpu::schedule::RoundRobin;
use block_async_relax::gpu::{
    BlockKernel, NoMonitor, PersistentExecutor, PersistentOptions, PersistentWorkspace,
    SimOptions, ThreadedOptions, XView,
};
use block_async_relax::sparse::gen::{laplacian_2d_5pt, trefethen};
use block_async_relax::sparse::{CsrMatrix, RowPartition};

/// Independent residual check: `||b - Ax||_2 / ||b||_2` computed directly,
/// so the assertion does not trust the solver's own bookkeeping.
fn rel_residual(a: &CsrMatrix, b: &[f64], x: &[f64]) -> f64 {
    let ax = a.mul_vec(x).expect("square");
    let num: f64 = b.iter().zip(&ax).map(|(bi, ai)| (bi - ai) * (bi - ai)).sum();
    let den: f64 = b.iter().map(|bi| bi * bi).sum();
    (num / den).sqrt()
}

fn solve_both_ways(
    a: &CsrMatrix,
    block: usize,
    tol: f64,
) -> (block_async_relax::core::SolveResult, block_async_relax::core::SolveResult, Vec<f64>) {
    let n = a.n_rows();
    let b = a.mul_vec(&vec![1.0; n]).expect("square");
    let x0 = vec![0.0; n];
    let p = RowPartition::uniform(n, block).expect("partition");
    let opts = SolveOptions {
        max_iters: 20_000,
        tol,
        record_history: false,
        check_every: 10,
    };
    let sim = AsyncBlockSolver {
        executor: ExecutorKind::Sim(SimOptions::default()),
        ..AsyncBlockSolver::async_k(5)
    };
    let thr = AsyncBlockSolver {
        executor: ExecutorKind::Threaded(ThreadedOptions { n_workers: 4, snapshot_rounds: false }),
        ..AsyncBlockSolver::async_k(5)
    };
    let rs = sim.solve(a, &b, &x0, &p, &opts).expect("sim solve");
    let rt = thr.solve(a, &b, &x0, &p, &opts).expect("threaded solve");
    (rs, rt, b)
}

/// The persistent threaded path reaches the same tolerance as the
/// discrete-event oracle on the 100x100 2D Laplacian.
#[test]
fn threaded_matches_sim_tolerance_on_laplacian_100() {
    let a = laplacian_2d_5pt(10); // the 100x100 five-point matrix
    let tol = 1e-8;
    let (rs, rt, b) = solve_both_ways(&a, 10, tol);
    assert!(rs.converged, "sim did not converge");
    assert!(rt.converged, "threaded did not converge");
    assert!(rs.iterations > 0 && rs.iterations < 20_000);
    assert!(rt.iterations > 0 && rt.iterations < 20_000);
    // Both iterates independently satisfy the same tolerance.
    assert!(rel_residual(&a, &b, &rs.x) <= tol, "sim residual above tol");
    assert!(rel_residual(&a, &b, &rt.x) <= tol, "threaded residual above tol");
}

/// Same equivalence on the strongly diagonally dominant `trefethen(400)`
/// matrix, where convergence takes only tens of global iterations — the
/// regime where a sluggish monitor would blow straight past the stop.
#[test]
fn threaded_matches_sim_tolerance_on_trefethen_400() {
    let a = trefethen(400).expect("trefethen");
    let tol = 1e-10;
    let (rs, rt, b) = solve_both_ways(&a, 25, tol);
    assert!(rs.converged, "sim did not converge");
    assert!(rt.converged, "threaded did not converge");
    assert!(rel_residual(&a, &b, &rs.x) <= tol, "sim residual above tol");
    assert!(rel_residual(&a, &b, &rt.x) <= tol, "threaded residual above tol");
}

/// With a loose tolerance and a huge round budget, the monitor's stop
/// flag must halt the workers long before the budget: total committed
/// updates stay strictly below `rounds * n_blocks`.
#[test]
fn stop_flag_halts_workers_before_the_round_budget() {
    let a = laplacian_2d_5pt(8); // n = 64
    let n = a.n_rows();
    let rhs = a.mul_vec(&vec![1.0; n]).expect("square");
    let p = RowPartition::uniform(n, 8).expect("partition");
    let kernel = AsyncJacobiKernel::new(&a, &rhs, &p, 5, 1.0).expect("diag dominant");
    let rounds = 5_000;
    let exec = PersistentExecutor::new(PersistentOptions {
        n_workers: 4,
        ..PersistentOptions::default()
    });
    let mut monitor = ResidualMonitor::new(&a, &rhs, 1e-2, 10);
    let mut ws = PersistentWorkspace::new();
    let mut x = vec![0.0; n];
    let (trace, report) =
        exec.run(&kernel, &mut x, rounds, &mut RoundRobin, &AllowAll, &mut monitor, &mut ws);
    assert!(report.stopped_at.is_some(), "monitor never fired");
    assert!(report.checks >= 1);
    let budget = rounds * kernel.n_blocks();
    assert!(
        trace.total_updates() < budget,
        "stop flag did not halt early: {} updates of a {} budget",
        trace.total_updates(),
        budget
    );
    assert!(rel_residual(&a, &rhs, &x) <= 1e-2, "stopped before the tolerance was met");
}

/// Satellite regression for the dead-`max_skew` bug: the persistent path
/// must measure real skew (more than one block and worker guarantees a
/// non-zero spread), and its progress-floor lag gate must keep it within
/// `max_round_lag + 1`.
#[test]
fn persistent_run_reports_bounded_nonzero_skew() {
    let a = laplacian_2d_5pt(8); // n = 64
    let n = a.n_rows();
    let rhs = a.mul_vec(&vec![1.0; n]).expect("square");
    let p = RowPartition::uniform(n, 8).expect("partition");
    let kernel = AsyncJacobiKernel::new(&a, &rhs, &p, 5, 1.0).expect("diag dominant");
    for lag in [1usize, 2] {
        let exec = PersistentExecutor::new(PersistentOptions {
            n_workers: 4,
            max_round_lag: lag,
            ..PersistentOptions::default()
        });
        let mut ws = PersistentWorkspace::new();
        let mut x = vec![0.0; n];
        let (trace, _) = exec.run(
            &kernel,
            &mut x,
            50,
            &mut RoundRobin,
            &AllowAll,
            &mut NoMonitor,
            &mut ws,
        );
        assert!(trace.max_skew > 0, "a multi-worker run cannot report zero skew");
        assert!(
            trace.max_skew <= lag + 1,
            "skew {} exceeds max_round_lag bound {}",
            trace.max_skew,
            lag + 1
        );
    }
}

/// A kernel that records which OS thread ran each block update, to prove
/// the executor spawns each worker exactly once (no per-chunk respawn).
struct ThreadProbe {
    n: usize,
    block_size: usize,
    seen_threads: parking_lot::Mutex<std::collections::HashSet<std::thread::ThreadId>>,
}

impl BlockKernel for ThreadProbe {
    fn n(&self) -> usize {
        self.n
    }
    fn n_blocks(&self) -> usize {
        self.n.div_ceil(self.block_size)
    }
    fn block_range(&self, b: usize) -> (usize, usize) {
        let s = b * self.block_size;
        (s, (s + self.block_size).min(self.n))
    }
    fn update_block(&self, b: usize, x: &XView<'_>, out: &mut [f64]) {
        self.seen_threads.lock().insert(std::thread::current().id());
        let (s, e) = self.block_range(b);
        for (o, i) in out.iter_mut().zip(s..e) {
            *o = 0.5 * x.get(i);
        }
    }
}

/// The spawn-count and zero-copy acceptance test: across repeated solves
/// on one workspace, every update runs on one of `n_workers` threads
/// spawned once per run (never the calling thread, never a respawn), and
/// the monitor's snapshot buffer keeps the same pointer and capacity —
/// the only full-vector staging the run is allowed.
#[test]
fn workers_spawn_once_and_the_snapshot_buffer_is_reused() {
    let probe = ThreadProbe {
        n: 96,
        block_size: 8,
        seen_threads: parking_lot::Mutex::new(std::collections::HashSet::new()),
    };
    let workers = 3;
    let exec = PersistentExecutor::new(PersistentOptions {
        n_workers: workers,
        ..PersistentOptions::default()
    });
    let mut ws = PersistentWorkspace::new();
    let mut x = vec![1.0; 96];
    let (trace, report) =
        exec.run(&probe, &mut x, 30, &mut RoundRobin, &AllowAll, &mut NoMonitor, &mut ws);
    assert_eq!(trace.total_updates(), 30 * probe.n_blocks());
    assert_eq!(report.workers_spawned, workers, "spawn count must equal the worker count");
    {
        let seen = probe.seen_threads.lock();
        assert!(
            seen.len() <= workers,
            "updates ran on {} distinct threads with only {} workers",
            seen.len(),
            workers
        );
        assert!(
            !seen.contains(&std::thread::current().id()),
            "the monitor thread must never execute block updates"
        );
    }

    // Zero copies / zero spawns in steady state: repeated runs on the
    // same workspace keep the snapshot buffer's pointer and capacity and
    // never re-materialise the ticket lists.
    let fp = ws.snapshot_fingerprint();
    let tickets = ws.materialised_tickets();
    for _ in 0..3 {
        probe.seen_threads.lock().clear();
        let (_, report) =
            exec.run(&probe, &mut x, 30, &mut RoundRobin, &AllowAll, &mut NoMonitor, &mut ws);
        assert_eq!(report.workers_spawned, workers);
        assert!(probe.seen_threads.lock().len() <= workers);
        assert_eq!(ws.snapshot_fingerprint(), fp, "snapshot buffer was reallocated");
        assert_eq!(ws.materialised_tickets(), tickets, "ticket lists were rebuilt");
    }
}
