//! Stop-watermark coherence under the schedule explorer.
//!
//! The persistent executor's protocol: workers advance per-shard
//! dispatch counters; the concurrent monitor polls them, records the
//! watermark (the minimum dispatch round) it decided to stop at, and
//! raises the stop flag. The invariant — *the recorded stop watermark
//! never exceeds the dispatch state a stopping worker observes* — is
//! what makes `PersistentReport::stopped_at` a trustworthy iteration
//! count, and it needs the Release(store)/Acquire(load) pairing on the
//! stop flag that `persistent.rs` declares.
//!
//! These tests drive the protocol skeleton (two dispatch counters, a
//! recorded-watermark cell, the stop flag) through the `abr_sync` model
//! runtime: the Relaxed-flag variant must be *caught* (that proves the
//! model can see this bug class), the Release/Acquire variant must
//! survive thousands of seeded schedules plus a bounded-preemption
//! exhaustive sweep.
//!
//! Run with `cargo test --features model`.
#![cfg(feature = "model")]

use block_async_relax::sync::model::{explore_exhaustive, explore_seeded, spawn};
use block_async_relax::sync::{Ordering, SyncBool, SyncUsize};
use std::sync::Arc;

const ROUNDS: usize = 6;
const STOP_AT: usize = 2;

/// One run of the protocol skeleton. `store_ord`/`load_ord` are the
/// orderings on the stop flag's store (monitor side) and loads (worker
/// side) — the pair under audit; `rounds`/`stop_at` size the instance
/// (the exhaustive sweep uses a smaller one to keep its decision tree
/// tractable).
fn stop_protocol_sized(rounds: usize, stop_at: usize, store_ord: Ordering, load_ord: Ordering) {
    let disp: Arc<Vec<SyncUsize>> = Arc::new((0..2).map(|_| SyncUsize::new(0)).collect());
    let rec = Arc::new(SyncUsize::new(0));
    let stop = Arc::new(SyncBool::new(false));

    let workers: Vec<_> = (0..2)
        .map(|w| {
            let (disp, rec, stop) = (Arc::clone(&disp), Arc::clone(&rec), Arc::clone(&stop));
            spawn(move || {
                loop {
                    if stop.load(load_ord) {
                        // sync: test fixture — the ordering under audit
                        // is the `load_ord` parameter above.
                        // The coherence invariant: whatever watermark the
                        // monitor recorded must be covered by the
                        // dispatch state this worker can now observe.
                        let r = rec.load(Ordering::Relaxed);
                        // sync: ^ ordered by the stop flag's edge when
                        // the audited pair is Release/Acquire.
                        let observed = disp
                            .iter()
                            .map(|d| d.load(Ordering::Relaxed))
                            // sync: ^ same — the flag's edge is what
                            // forces these reads past the monitor's poll.
                            .min()
                            .unwrap();
                        assert!(
                            r <= observed,
                            "recorded stop watermark {r} exceeds worker-visible dispatch {observed}"
                        );
                        return;
                    }
                    // sync: own counter — this worker is its only
                    // writer, so the Relaxed read is exact.
                    if disp[w].load(Ordering::Relaxed) >= rounds {
                        return;
                    }
                    // sync: monotone dispatch tick; the monitor reads it
                    // conservatively low by design.
                    disp[w].fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // The monitor runs on the body's virtual thread, as the executor's
    // monitor runs on the caller.
    loop {
        let w = disp
            .iter()
            .map(|d| d.load(Ordering::Relaxed))
            // sync: racy poll of monotone counters — a stale read only
            // under-reports the watermark (stops late, never early).
            .min()
            .unwrap();
        if w >= stop_at {
            rec.store(w, Ordering::Relaxed);
            // sync: ^ published by the Release store below when the
            // audited pair is Release/Acquire.
            stop.store(true, store_ord);
            // sync: ^ test fixture — the ordering under audit is the
            // `store_ord` parameter.
            break;
        }
    }
    for h in workers {
        h.join();
    }
}

/// With a fully `Relaxed` stop flag the invariant is violated somewhere:
/// a worker can observe stop=true and the freshly recorded watermark
/// while its view of the other worker's dispatch counter is still stale
/// below it. The explorer must catch this — it is the regression the
/// Release/Acquire upgrade in `persistent.rs` exists to prevent.
#[test]
fn relaxed_stop_flag_violates_watermark_coherence() {
    let outcome = explore_seeded(0x57_0b, 2_000, || {
        // sync: the flag pairing under audit — deliberately Relaxed/Relaxed.
        stop_protocol_sized(ROUNDS, STOP_AT, Ordering::Relaxed, Ordering::Relaxed)
    });
    let v = outcome.assert_violation();
    assert!(
        v.message.contains("exceeds worker-visible dispatch"),
        "unexpected violation: {}",
        v.message
    );
}

/// The shipped pairing: Release store, Acquire loads. The acquire edge
/// pulls the monitor's recorded watermark *and* its dispatch-poll floors
/// into the stopping worker's view, so the invariant holds under every
/// explored schedule.
#[test]
fn release_acquire_stop_flag_keeps_watermark_coherent() {
    explore_seeded(0xACC_E55, 2_000, || {
        // sync: the shipped pairing — Release store / Acquire loads.
        stop_protocol_sized(ROUNDS, STOP_AT, Ordering::Release, Ordering::Acquire)
    })
    .assert_ok();
}

/// The same guarantee swept systematically with bounded preemptions (the
/// CHESS-style mode) over a smaller instance of the 3-virtual-thread
/// protocol — the full decision tree is enormous, so this is a capped
/// depth-first sample around the sequential base schedule.
#[test]
fn release_acquire_stop_flag_exhaustive() {
    let outcome = explore_exhaustive(2, 3_000, || {
        // sync: the shipped Release/Acquire pairing, smaller instance.
        stop_protocol_sized(2, 1, Ordering::Release, Ordering::Acquire)
    });
    outcome.assert_ok();
    assert!(
        outcome.schedules > 10,
        "exhaustive sweep explored suspiciously few schedules ({})",
        outcome.schedules
    );
}
