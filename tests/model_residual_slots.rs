//! Epoch-tear semantics of `ResidualSlots` under the schedule explorer.
//!
//! The fused-residual protocol promises exactly one thing to the
//! monitor: a `reduce()` that returns `Some(sum)` only ever sums
//! *published* values. Two hazards could break that promise under weak
//! memory:
//!
//! * **cold slot** — a block that has never published since the reset;
//!   summing its zero bits would *undercount* the residual and could
//!   confirm a stale stop. `reduce` must return `None` instead.
//! * **epoch tear** — a reader observes a freshly bumped epoch while the
//!   slot's value bits are still the pre-publish zeros. The
//!   Release(bump)/Acquire(poll) pairing in `residual.rs` is exactly
//!   what rules this out; the model runtime's simulated weak memory
//!   would permit the tear if the orderings were weaker (the mutation is
//!   caught in `tests/model_hb.rs`).
//!
//! So across every explored schedule, each observed `reduce()` must be
//! either `None` or a sum composed of genuinely published values —
//! never a mixture involving cold bits.
//!
//! Run with `cargo test --features model`.
#![cfg(feature = "model")]

use block_async_relax::gpu::ResidualSlots;
use block_async_relax::sync::model::{explore_exhaustive, explore_seeded, spawn};
use std::sync::Arc;

/// With a concurrent publisher filling both slots (and republishing the
/// first), every non-`None` reduction is one of the two sums that can be
/// assembled from published values: `1 + 2` or `5 + 2`. A sum involving
/// a cold zero (`0 + 2 = 2`) or a torn value would fail the assertion.
#[test]
fn reduce_never_sums_cold_or_torn_values() {
    explore_seeded(0x51_075, 600, || {
        let mut slots = ResidualSlots::new();
        slots.reset(2);
        let slots = Arc::new(slots);
        let s2 = Arc::clone(&slots);
        let w = spawn(move || {
            s2.publish(0, 1.0);
            s2.publish(1, 2.0);
            s2.publish(0, 5.0);
        });
        for _ in 0..4 {
            match slots.reduce() {
                None => {}
                Some(sum) => assert!(
                    sum == 3.0 || sum == 7.0,
                    "reduce returned {sum}, not a sum of published values"
                ),
            }
        }
        w.join();
    })
    .assert_ok();
}

/// While any slot is cold, `reduce` refuses: a monitor polling
/// concurrently with a publisher that only ever fills slot 0 must see
/// `None` on every poll, under every schedule.
#[test]
fn reduce_refuses_partial_publication() {
    explore_seeded(0x51_076, 400, || {
        let mut slots = ResidualSlots::new();
        slots.reset(2);
        let slots = Arc::new(slots);
        let s2 = Arc::clone(&slots);
        let w = spawn(move || {
            s2.publish(0, 1.0);
        });
        for _ in 0..3 {
            assert_eq!(slots.reduce(), None, "reduced past a cold slot");
        }
        w.join();
    })
    .assert_ok();
}

/// The cold/torn guarantee swept with bounded preemptions (CHESS-style)
/// over the smallest interesting instance: one publisher, two slots,
/// one republish.
#[test]
fn reduce_cold_torn_exhaustive() {
    let outcome = explore_exhaustive(2, 3_000, || {
        let mut slots = ResidualSlots::new();
        slots.reset(2);
        let slots = Arc::new(slots);
        let s2 = Arc::clone(&slots);
        let w = spawn(move || {
            s2.publish(0, 1.0);
            s2.publish(1, 2.0);
        });
        match slots.reduce() {
            None => {}
            Some(sum) => assert_eq!(sum, 3.0, "sum includes cold or torn bits"),
        }
        w.join();
    });
    outcome.assert_ok();
    assert!(
        outcome.schedules > 5,
        "exhaustive sweep explored suspiciously few schedules ({})",
        outcome.schedules
    );
}
