//! Equivalence and workspace-reuse properties of the precompiled block
//! plans: the plan path of `AsyncJacobiKernel` must be **bit-identical**
//! to the span-sliced reference path for arbitrary systems, partitions,
//! dampings, and sweep counts; the per-worker `BlockScratch` buffers
//! must stop allocating once their capacities stabilise and must never
//! be shared between two concurrent workers.

use block_async_relax::core::async_block::{AsyncJacobiKernel, LocalSweep};
use block_async_relax::gpu::kernel::AllowAll;
use block_async_relax::gpu::schedule::RoundRobin;
use block_async_relax::gpu::{
    BlockKernel, BlockScratch, SimExecutor, SimOptions, ThreadedExecutor, ThreadedOptions, XView,
};
use block_async_relax::sparse::gen::{
    fv_stencil, laplacian_2d_5pt_stencil, laplacian_3d_7pt_stencil, random_diag_dominant,
};
use block_async_relax::sparse::{RowPartition, SweepTier};
use proptest::prelude::*;

/// A deterministic, seed-dependent iterate with sign changes and varied
/// magnitudes (the asynchronous executors hand the kernel iterates that
/// are nothing like smooth solutions).
fn pseudo_iterate(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = (i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 1000;
            (t as f64 / 500.0 - 1.0) * 10f64.powi((i % 5) as i32 - 2)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: for random matrices, partitions, local
    /// iteration counts, and dampings, the plan path (packed local
    /// operator + packed halo + ELL where applicable) produces the same
    /// **bits** as the reference span-sliced update.
    #[test]
    fn plan_update_is_bit_equal_to_reference(
        seed in 0u64..400,
        n in 8usize..80,
        block in 1usize..24,
        k in 1usize..6,
        damp_percent in 40u64..160,
        gs_bit in 0usize..2,
    ) {
        let a = random_diag_dominant(n, 4, 1.3, seed);
        let rhs = a.mul_vec(&pseudo_iterate(n, seed ^ 0x5a)).expect("square");
        let p = RowPartition::uniform(n, block).expect("partition");
        // hit the undamped fast path on a third of the cases
        let damping = if damp_percent % 3 == 0 { 1.0 } else { damp_percent as f64 / 100.0 };
        let sweep = if gs_bit == 1 { LocalSweep::GaussSeidel } else { LocalSweep::Jacobi };
        let kernel = AsyncJacobiKernel::with_sweep(&a, &rhs, &p, k, damping, sweep)
            .expect("diag dominant");
        let x = pseudo_iterate(n, seed);
        let mut scratch = BlockScratch::new();
        for b in 0..kernel.n_blocks() {
            let (s, e) = kernel.block_range(b);
            let mut plan_out = vec![0.0; e - s];
            let mut ref_out = vec![0.0; e - s];
            kernel.update_block_with(b, &XView::Plain(&x), &mut plan_out, &mut scratch);
            kernel.update_block_reference(b, &XView::Plain(&x), &mut ref_out);
            for (li, (pv, rv)) in plan_out.iter().zip(&ref_out).enumerate() {
                prop_assert_eq!(
                    pv.to_bits(), rv.to_bits(),
                    "row {} of block {} (k={}, tau={}, {:?}): {} vs {}",
                    li, b, k, damping, sweep, pv, rv
                );
            }
        }
    }

    /// Full-solve equivalence: a solver built today produces the same
    /// iterates whether each update goes through a shared scratch or a
    /// fresh one — scratch reuse is invisible to the numerics.
    #[test]
    fn scratch_reuse_is_invisible_to_results(
        seed in 0u64..200,
        block in 2usize..16,
    ) {
        let n = 48;
        let a = random_diag_dominant(n, 4, 1.4, seed);
        let rhs = a.mul_vec(&vec![1.0; n]).expect("square");
        let p = RowPartition::uniform(n, block).expect("partition");
        let kernel = AsyncJacobiKernel::new(&a, &rhs, &p, 3, 1.0).expect("diag dominant");
        let x = pseudo_iterate(n, seed);
        let mut shared = BlockScratch::new();
        for b in 0..kernel.n_blocks() {
            let (s, e) = kernel.block_range(b);
            let mut out_shared = vec![0.0; e - s];
            let mut out_fresh = vec![0.0; e - s];
            kernel.update_block_with(b, &XView::Plain(&x), &mut out_shared, &mut shared);
            kernel.update_block_with(
                b,
                &XView::Plain(&x),
                &mut out_fresh,
                &mut BlockScratch::new(),
            );
            prop_assert_eq!(&out_shared, &out_fresh, "block {}", b);
        }
    }
}

/// Plants `inf`/`-inf`/`NaN` at seed-chosen positions — the iterates of
/// a divergent run, which the ELL pad slot and both vectorized tiers
/// must pass through without perturbing a bit.
fn poison(x: &mut [f64], seed: u64) {
    let n = x.len() as u64;
    for j in 0..3u64 {
        let pos = (seed.wrapping_mul(6364136223846793005).wrapping_add(j * 97) % n) as usize;
        x[pos] = match j {
            0 => f64::INFINITY,
            1 => f64::NEG_INFINITY,
            _ => f64::NAN,
        };
    }
}

/// Bitwise equality, with two NaNs of any payload counting as equal (the
/// tiers run identical op sequences, but NaN payload propagation is the
/// one place IEEE 754 lets hardware differ).
fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The vectorized-ELL accumulation-order contract: with both kernels
    /// pinned to their tier via `force_tier`, the four-lane sweep must
    /// reproduce the scalar ELL sweep **bit for bit** — including on
    /// iterates carrying `inf`/`NaN`, which exercise the pad slot inside
    /// the gather lanes.
    #[test]
    fn simd_ell_sweep_is_bit_identical_to_scalar_ell(
        seed in 0u64..300,
        n in 8usize..96,
        block in 2usize..24,
        k in 1usize..6,
        damp_percent in 40u64..160,
        poison_bit in 0usize..2,
    ) {
        let a = random_diag_dominant(n, 4, 1.3, seed);
        let rhs = a.mul_vec(&pseudo_iterate(n, seed ^ 0x77)).expect("square");
        let p = RowPartition::uniform(n, block).expect("partition");
        let damping = if damp_percent % 3 == 0 { 1.0 } else { damp_percent as f64 / 100.0 };
        let mut k_scalar =
            AsyncJacobiKernel::with_sweep(&a, &rhs, &p, k, damping, LocalSweep::Jacobi)
                .expect("diag dominant");
        let mut k_simd =
            AsyncJacobiKernel::with_sweep(&a, &rhs, &p, k, damping, LocalSweep::Jacobi)
                .expect("diag dominant");
        k_scalar.force_tier(Some(SweepTier::Ell));
        k_simd.force_tier(Some(SweepTier::EllSimd));
        let mut x = pseudo_iterate(n, seed);
        if poison_bit == 1 {
            poison(&mut x, seed);
        }
        let mut s1 = BlockScratch::new();
        let mut s2 = BlockScratch::new();
        for b in 0..k_scalar.n_blocks() {
            let (s, e) = k_scalar.block_range(b);
            let mut out_scalar = vec![0.0; e - s];
            let mut out_simd = vec![0.0; e - s];
            k_scalar.update_block_with(b, &XView::Plain(&x), &mut out_scalar, &mut s1);
            k_simd.update_block_with(b, &XView::Plain(&x), &mut out_simd, &mut s2);
            for (li, (sv, vv)) in out_scalar.iter().zip(&out_simd).enumerate() {
                prop_assert!(
                    bits_eq(*sv, *vv),
                    "row {} of block {} (k={}, tau={}, poisoned={}): {} vs {}",
                    li, b, k, damping, poison_bit == 1, sv, vv
                );
            }
        }
    }

    /// The matrix-free stencil tier against the stored-matrix plan path
    /// on all three constant-coefficient generators (2D 5-point, 3D
    /// 7-point, ungraded FV). The acceptance bar is 1 ulp; the tiers
    /// share op order and bit-equal coefficients, so we assert the
    /// stronger bitwise property — non-finite iterates included.
    #[test]
    fn stencil_sweep_is_bit_identical_to_plan(
        which in 0usize..3,
        block in 3usize..30,
        k in 1usize..5,
        damp_percent in 50u64..150,
        seed in 0u64..100,
        poison_bit in 0usize..2,
    ) {
        let (a, d) = match which {
            0 => laplacian_2d_5pt_stencil(8),
            1 => laplacian_3d_7pt_stencil(4),
            _ => fv_stencil(7, 0.45).expect("constant-coefficient fv"),
        };
        let n = a.n_rows();
        let rhs = a.mul_vec(&pseudo_iterate(n, seed ^ 0x1d)).expect("square");
        let p = RowPartition::uniform(n, block).expect("partition");
        let damping = if damp_percent % 3 == 0 { 1.0 } else { damp_percent as f64 / 100.0 };
        let k_sten = AsyncJacobiKernel::with_sweep_and_stencil(
            &a, &rhs, &p, k, damping, LocalSweep::Jacobi, Some(&d),
        )
        .expect("verified stencil");
        let k_plan = AsyncJacobiKernel::with_sweep(&a, &rhs, &p, k, damping, LocalSweep::Jacobi)
            .expect("diag dominant");
        let mut x = pseudo_iterate(n, seed);
        if poison_bit == 1 {
            poison(&mut x, seed);
        }
        let mut s1 = BlockScratch::new();
        let mut s2 = BlockScratch::new();
        for b in 0..k_sten.n_blocks() {
            prop_assert_eq!(k_sten.resolved_tier(b), SweepTier::Stencil);
            let (s, e) = k_sten.block_range(b);
            let mut out_sten = vec![0.0; e - s];
            let mut out_plan = vec![0.0; e - s];
            k_sten.update_block_with(b, &XView::Plain(&x), &mut out_sten, &mut s1);
            k_plan.update_block_with(b, &XView::Plain(&x), &mut out_plan, &mut s2);
            for (li, (tv, pv)) in out_sten.iter().zip(&out_plan).enumerate() {
                prop_assert!(
                    bits_eq(*tv, *pv),
                    "generator {} row {} of block {} (k={}, tau={}, poisoned={}): {} vs {}",
                    which, li, b, k, damping, poison_bit == 1, tv, pv
                );
            }
        }
    }
}

/// The acceptance criterion on allocations: after the first full pass
/// over the blocks, the scratch buffers' pointers and capacities never
/// change again — `update_block_with` is allocation-free in steady state.
#[test]
fn scratch_capacity_stabilises_after_first_pass() {
    let n = 100;
    let a = random_diag_dominant(n, 5, 1.4, 11);
    let rhs = a.mul_vec(&vec![1.0; n]).unwrap();
    // uneven blocks: 13-row blocks with a 9-row tail, so the scratch is
    // resized down and back up across the pass
    let p = RowPartition::uniform(n, 13).unwrap();
    let kernel = AsyncJacobiKernel::new(&a, &rhs, &p, 5, 1.0).unwrap();
    let x = pseudo_iterate(n, 3);
    let mut scratch = BlockScratch::new();
    let mut out = [0.0; 13];

    let mut pass = |scratch: &mut BlockScratch| {
        for b in 0..kernel.n_blocks() {
            let (s, e) = kernel.block_range(b);
            kernel.update_block_with(b, &XView::Plain(&x), &mut out[..e - s], scratch);
        }
    };
    pass(&mut scratch);
    // cur/next swap per sweep, so compare them as an unordered pair
    let fingerprint = |s: &BlockScratch| {
        let mut bufs = [
            (s.cur.as_ptr() as usize, s.cur.capacity()),
            (s.next.as_ptr() as usize, s.next.capacity()),
        ];
        bufs.sort_unstable();
        (bufs, s.frozen.as_ptr() as usize, s.frozen.capacity())
    };
    let stable = fingerprint(&scratch);
    for _ in 0..10 {
        pass(&mut scratch);
        assert_eq!(
            fingerprint(&scratch),
            stable,
            "scratch reallocated after its capacity had stabilised"
        );
    }
}

/// A probe kernel that detects cross-worker scratch aliasing: each update
/// stamps the whole scratch with a unique tag, yields, then checks the
/// stamp survived. Two workers sharing one scratch concurrently would
/// overwrite each other's tags.
struct ScratchProbe {
    n: usize,
    block_size: usize,
    tag: abr_sync::SyncUsize,
    seen_scratches: parking_lot::Mutex<std::collections::BTreeSet<usize>>,
}

impl BlockKernel for ScratchProbe {
    fn n(&self) -> usize {
        self.n
    }
    fn n_blocks(&self) -> usize {
        self.n.div_ceil(self.block_size)
    }
    fn block_range(&self, b: usize) -> (usize, usize) {
        let s = b * self.block_size;
        (s, (s + self.block_size).min(self.n))
    }
    fn update_block(&self, b: usize, x: &XView<'_>, out: &mut [f64]) {
        let mut scratch = BlockScratch::new();
        self.update_block_with(b, x, out, &mut scratch);
    }
    fn update_block_with(
        &self,
        b: usize,
        x: &XView<'_>,
        out: &mut [f64],
        scratch: &mut BlockScratch,
    ) {
        let (s, e) = self.block_range(b);
        scratch.ensure(e - s);
        // sync: unique-tag dispenser; only RMW atomicity matters.
        let tag = self.tag.fetch_add(1, abr_sync::Ordering::Relaxed) as f64;
        for v in scratch.cur.iter_mut() {
            *v = tag;
        }
        self.seen_scratches.lock().insert(scratch.cur.as_ptr() as usize);
        std::thread::yield_now();
        for v in &scratch.cur {
            assert_eq!(*v, tag, "scratch shared between concurrent workers");
        }
        for (o, i) in out.iter_mut().zip(s..e) {
            *o = 0.5 * x.get(i);
        }
    }
}

#[test]
fn threaded_executor_gives_each_worker_its_own_scratch() {
    let probe = ScratchProbe {
        n: 64,
        block_size: 8,
        tag: abr_sync::SyncUsize::new(0),
        seen_scratches: parking_lot::Mutex::new(std::collections::BTreeSet::new()),
    };
    let workers = 4;
    let exec = ThreadedExecutor::new(ThreadedOptions { n_workers: workers, snapshot_rounds: false });
    let x0 = vec![1.0; 64];
    // panics inside update_block_with propagate out of thread::scope, so
    // reaching this point means no aliasing was ever observed
    let (_, trace, _) = exec.run(&probe, &x0, 50, &mut RoundRobin, &AllowAll);
    assert_eq!(trace.total_updates(), 50 * probe.n_blocks());
    let distinct = probe.seen_scratches.lock().len();
    assert!(
        (1..=workers).contains(&distinct),
        "expected one scratch per active worker, saw {distinct}"
    );
}

#[test]
fn sim_executor_reuses_one_scratch_for_the_whole_replay() {
    let probe = ScratchProbe {
        n: 60,
        block_size: 6, // divides n: every ensure() asks the same size
        tag: abr_sync::SyncUsize::new(0),
        seen_scratches: parking_lot::Mutex::new(std::collections::BTreeSet::new()),
    };
    let exec = SimExecutor::new(SimOptions { n_workers: 5, jitter: 0.3, seed: 7 });
    let mut x = vec![1.0; 60];
    exec.run(&probe, &mut x, 40, &mut RoundRobin, &AllowAll, |_, _| {});
    assert_eq!(
        probe.seen_scratches.lock().len(),
        1,
        "the sequential replay should drive every update through one scratch"
    );
}
