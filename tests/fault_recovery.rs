//! End-to-end properties of the live fault runtime at the solver level:
//! for arbitrary worker counts, block layouts, and fault/recovery
//! timings, a killed worker must cost no more than the widened staleness
//! contract `max_skew <= max_round_lag + 1 + max_outage_rounds`, and
//! recovery-(t_r) must bring the solve back to the fault-free tolerance
//! on the paper-style systems (2D Laplacian, trefethen). A poisoned
//! (panicking) kernel degrades the run without aborting it.

use block_async_relax::core::{AsyncBlockSolver, SolveOptions};
use block_async_relax::gpu::{FaultPlan, PersistentOptions, RunOutcome};
use block_async_relax::sparse::gen::{laplacian_2d_5pt, trefethen};
use block_async_relax::sparse::{CsrMatrix, RowPartition};
use proptest::prelude::*;
use std::time::Duration;

fn tuning(workers: usize, lag: usize) -> PersistentOptions {
    PersistentOptions {
        n_workers: workers,
        max_round_lag: lag,
        detect_after_rounds: 4,
        // Generous: a starved-but-alive worker set (oversubscribed CI
        // box) must not read as a wedge — only a real no-recovery
        // outage should ever wait this long.
        stall_timeout: Duration::from_millis(1_500),
        ..PersistentOptions::default()
    }
}

fn solve_to_tol(
    a: &CsrMatrix,
    block: usize,
    tol: f64,
    budget: usize,
    plan: &FaultPlan,
    workers: usize,
) -> block_async_relax::core::FaultedSolve {
    let n = a.n_rows();
    let rhs = a.mul_vec(&vec![1.0; n]).unwrap();
    let x0 = vec![0.0; n];
    let partition = RowPartition::uniform(n, block).unwrap();
    let solver = AsyncBlockSolver::async_k(5);
    let opts = SolveOptions { max_iters: budget, tol, record_history: false, check_every: 10 };
    solver
        .solve_faulted(a, &rhs, &x0, &partition, &opts, plan, Some(&tuning(workers, 1)))
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The widened staleness contract holds for any worker count, block
    /// layout, outage round, recovery delay, and lag window: the fault
    /// runtime may cost at most the realised outage on top of the
    /// fault-free `max_round_lag + 1` bound.
    #[test]
    fn widened_skew_bound_holds_for_any_fault_timing(
        workers in 2usize..6,
        block in 4usize..16,
        t0 in 0usize..20,
        t_r in 0usize..25,
        lag in 1usize..4,
        victim in 0usize..6,
    ) {
        let a = laplacian_2d_5pt(8);
        let n = a.n_rows();
        let rhs = vec![1.0; n];
        let x0 = vec![0.0; n];
        let partition = RowPartition::uniform(n, block).unwrap();
        let plan = FaultPlan::new().kill(victim % workers, t0).with_recovery(t_r);
        let solver = AsyncBlockSolver::async_k(2);
        let opts =
            SolveOptions { max_iters: 40, tol: 0.0, record_history: false, check_every: 10 };
        let fs = solver
            .solve_faulted(&a, &rhs, &x0, &partition, &opts, &plan, Some(&tuning(workers, lag)))
            .unwrap();
        let fault = &fs.report.fault;
        prop_assert!(
            fs.trace.max_skew <= lag + 1 + fault.max_outage_rounds,
            "skew {} exceeds widened bound {} + 1 + {} (outcome {:?})",
            fs.trace.max_skew, lag, fault.max_outage_rounds, fs.report.outcome
        );
        // A recovery plan must never leave the run wedged: either the
        // budget drains (Completed / Stopped), never a Stalled verdict.
        prop_assert!(
            fs.report.outcome != RunOutcome::Stalled,
            "recovery-({t_r}) must unwedge the run: {:?}", fs.report.fault
        );
    }
}

/// Recovery-(t_r) reaches the fault-free tolerance on the 100x100
/// 2D Laplacian (the paper's model problem shape).
#[test]
fn recovery_matches_fault_free_tolerance_on_laplacian() {
    let a = laplacian_2d_5pt(10);
    let tol = 1e-8;
    let free = solve_to_tol(&a, 10, tol, 800, &FaultPlan::new(), 4);
    assert!(free.result.converged, "fault-free baseline: {:e}", free.result.final_residual);

    let plan = FaultPlan::new().kill(1, 10).with_recovery(10);
    let faulted = solve_to_tol(&a, 10, tol, 4_000, &plan, 4);
    assert!(
        faulted.result.converged,
        "recovery-(10) must reach the fault-free tolerance: {:e} ({:?})",
        faulted.result.final_residual,
        faulted.report.outcome
    );
    let fault = &faulted.report.fault;
    assert_eq!(fault.reassignments.len(), 1, "the orphaned shard must be adopted: {fault:?}");
    assert!(fault.frozen_spans.iter().all(|s| s.thawed), "every outage must end: {fault:?}");
}

/// Same contract on trefethen(400) — an irregular-stencil system far
/// from the Laplacian's banded structure.
#[test]
fn recovery_matches_fault_free_tolerance_on_trefethen() {
    let a = trefethen(400).unwrap();
    let tol = 1e-8;
    let free = solve_to_tol(&a, 25, tol, 800, &FaultPlan::new(), 4);
    assert!(free.result.converged, "fault-free baseline: {:e}", free.result.final_residual);

    let plan = FaultPlan::new().kill(2, 10).with_recovery(10);
    let faulted = solve_to_tol(&a, 25, tol, 4_000, &plan, 4);
    assert!(
        faulted.result.converged,
        "recovery-(10) must reach the fault-free tolerance: {:e} ({:?})",
        faulted.result.final_residual,
        faulted.report.outcome
    );
    assert_eq!(faulted.report.fault.reassignments.len(), 1);
}

/// A panicking kernel degrades the run without aborting it: every sweep
/// of the poisoned worker is isolated by `catch_unwind`, its commits are
/// dropped, and the healthy workers still converge the solve.
#[test]
fn poisoned_worker_degrades_without_aborting() {
    let a = laplacian_2d_5pt(10);
    let plan = FaultPlan::new().poison(0, 3);
    let fs = solve_to_tol(&a, 10, 1e-8, 1_600, &plan, 4);
    assert!(fs.report.fault.caught_panics > 0, "the poison must actually fire");
    assert!(
        fs.result.converged,
        "healthy workers must still converge: {:e}",
        fs.result.final_residual
    );
    // A panicking sweep is not an outage: nothing freezes, nothing is
    // reassigned.
    assert!(fs.report.fault.frozen_spans.is_empty());
    assert!(fs.report.fault.reassignments.is_empty());
    assert_eq!(fs.report.fault.max_outage_rounds, 0);
}
