//! End-to-end smoke of the complete reproduction pipeline at small scale:
//! every experiment module runs, produces structurally sound artifacts,
//! and every emitter (markdown, CSV, JSON, SVG, MatrixMarket) yields
//! parseable output.

use block_async_relax::exp::experiments::{
    ablation, convergence_figs, fault_exp, fig11, fig9, nondet, resilience, table1, theory,
    timing_tables,
};
use block_async_relax::exp::svg::figure_to_svg;
use block_async_relax::exp::{ExpOptions, Scale};

fn opts() -> ExpOptions {
    ExpOptions { scale: Scale::Small, runs: 4, seed: 17 }
}

#[test]
fn every_experiment_runs_and_emits() {
    let o = opts();

    let t1 = table1::run(&o).expect("table1");
    assert_eq!(t1.rows.len(), 7);
    assert!(t1.to_markdown().lines().count() >= 10);
    assert!(t1.to_json().contains("rho(M)"));

    let nd = nondet::run(&o).expect("nondet");
    assert_eq!(nd.tables.len(), 2);
    let svg = figure_to_svg(&nd.figure);
    assert!(svg.starts_with("<svg") && svg.contains("</svg>"));

    let conv = convergence_figs::run(&o).expect("fig6/7");
    assert_eq!(conv.fig6.len(), 6);
    assert_eq!(conv.fig7.len(), 6);
    for f in conv.fig6.iter().chain(&conv.fig7) {
        assert!(!figure_to_svg(f).is_empty());
        assert!(f.to_csv().starts_with("series,x,y"));
    }

    assert_eq!(timing_tables::table4(&o).expect("table4").rows.len(), 9);
    assert_eq!(timing_tables::table5(&o).expect("table5").rows.len(), 6);
    assert_eq!(timing_tables::fig8(&o).expect("fig8").series.len(), 3);

    let f9 = fig9::run(&o).expect("fig9");
    assert_eq!(f9.len(), 4);

    let fx = fault_exp::run(&o).expect("fig10");
    assert_eq!(fx.figures.len(), 2);
    assert_eq!(fx.table.rows.len(), 2);

    assert_eq!(fig11::run(&o).expect("fig11").rows.len(), 3);
    assert_eq!(ablation::run(&o).expect("ablation").len(), 8);
    assert_eq!(resilience::run(&o).expect("resilience").rows.len(), 5);
    assert_eq!(theory::run(&o).expect("theory").rows.len(), 4);
}

#[test]
fn exported_matrices_roundtrip_through_matrix_market() {
    use block_async_relax::exp::matrices::full_suite;
    for sys in full_suite(Scale::Small).expect("suite") {
        let mut buf = Vec::new();
        block_async_relax::sparse::io::write_matrix_market(&sys.a, &mut buf).expect("write");
        let back = block_async_relax::sparse::io::read_matrix_market(&buf[..]).expect("read");
        assert_eq!(sys.a, back, "{} must round-trip", sys.which.name());
    }
}

#[test]
fn seeds_reproduce_and_differ() {
    let a = nondet::run(&ExpOptions { scale: Scale::Small, runs: 3, seed: 5 }).expect("run");
    let b = nondet::run(&ExpOptions { scale: Scale::Small, runs: 3, seed: 5 }).expect("run");
    let c = nondet::run(&ExpOptions { scale: Scale::Small, runs: 3, seed: 6 }).expect("run");
    assert_eq!(a.tables[0].rows, b.tables[0].rows, "same seed, same statistics");
    assert_ne!(a.tables[0].rows, c.tables[0].rows, "different seed, different runs");
}
