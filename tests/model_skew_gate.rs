//! The persistent executor's staleness gate under the schedule explorer.
//!
//! `persistent.rs` lets workers draw per-shard dispatch tickets only
//! while the ticket's round stays within `floor + lag`, where `floor` is
//! a (possibly stale, conservatively low) view of the slowest shard's
//! progress — that gate is what enforces the paper's bounded-staleness
//! contract `max_skew <= max_round_lag + 1`.
//!
//! The draw was originally "validate a loaded counter against the gate,
//! then `fetch_add`" — a classic time-of-check/time-of-use hole: two
//! workers of the same shard can validate the *same* counter value and
//! then draw *two* tickets, the second of which was never gate-checked.
//! The shipped protocol validates and draws in one `compare_exchange`
//! instead. These tests drive both variants through the `abr_sync` model
//! runtime: the explorer must catch the TOCTOU variant and must clear
//! the CAS one.
//!
//! Run with `cargo test --features model`.
#![cfg(feature = "model")]

use block_async_relax::sync::model::{explore_exhaustive, explore_seeded, spawn};
use block_async_relax::sync::{Ordering, SyncUsize};
use std::sync::{Arc, Mutex};

/// Tickets per shard (with one block per shard, ticket == round).
const TOTAL: usize = 4;
/// The staleness gate: a ticket may run at most `LAG` rounds ahead of
/// the slowest shard.
const LAG: usize = 1;

/// Ground truth updated in the instant a ticket is drawn (the code
/// between two facade operations runs atomically under the scheduler
/// baton, and the lock is never held across a facade call). `counts`
/// mirrors completed tickets per shard; `max_skew` is the widest spread
/// ever reached.
#[derive(Default)]
struct Truth {
    counts: [usize; 2],
    max_skew: usize,
}

/// One run of the draw protocol over two single-block shards. Workers 0
/// and 1 are homed on shard 0 (the racing pair the TOCTOU needs), worker
/// 2 on shard 1 (the slow shard whose count is the gate's floor). Each
/// worker draws only its home shard, gated at `floor + LAG` where
/// `floor` is its racy view of the slowest shard. `toctou` selects the
/// buggy validate-then-`fetch_add` draw; `false` selects the shipped
/// gate-validated CAS draw.
fn draw_protocol(toctou: bool) {
    let next: Arc<Vec<SyncUsize>> = Arc::new((0..2).map(|_| SyncUsize::new(0)).collect());
    let counts: Arc<Vec<SyncUsize>> = Arc::new((0..2).map(|_| SyncUsize::new(0)).collect());
    let truth = Arc::new(Mutex::new(Truth::default()));

    let commit = |s: usize, counts: &[SyncUsize], truth: &Mutex<Truth>| {
        {
            // Plain mutex between facade ops: records the true draw
            // order and checks the paper's bound against it.
            let mut t = truth.lock().unwrap();
            t.counts[s] += 1;
            let skew = t.counts[0].abs_diff(t.counts[1]);
            t.max_skew = t.max_skew.max(skew);
            assert!(
                skew <= LAG + 1,
                "shard skew {skew} exceeds the bounded-staleness contract ({})",
                LAG + 1
            );
        }
        // sync: progress counter feeding the (deliberately racy) floor
        // reads below; a stale read only under-reports progress, which
        // makes the gate stricter, never looser.
        counts[s].fetch_add(1, Ordering::Relaxed);
    };

    let workers: Vec<_> = (0..3)
        .map(|w| {
            let home = if w < 2 { 0 } else { 1 };
            let (next, counts, truth) = (Arc::clone(&next), Arc::clone(&counts), Arc::clone(&truth));
            spawn(move || {
                loop {
                    // sync: shard dispatch counter — a stale read here is
                    // exactly the raciness under audit (the stale-streak
                    // liveness rule still bounds the exit check).
                    let seen = next[home].load(Ordering::Relaxed);
                    if seen >= TOTAL {
                        return;
                    }
                    let floor = counts
                        .iter()
                        // sync: racy poll of monotone counters — see the
                        // commit closure; staleness is conservative.
                        .map(|c| c.load(Ordering::Relaxed))
                        .min()
                        .unwrap();
                    if toctou {
                        // The original draw: gate-check the loaded value,
                        // then draw with an unrelated RMW — the ticket it
                        // hands out may not be the one the gate checked.
                        if seen <= floor + LAG {
                            // sync: test fixture — the TOCTOU under audit.
                            let t = next[home].fetch_add(1, Ordering::Relaxed);
                            if t < TOTAL {
                                commit(home, &counts, &truth);
                            }
                        }
                    } else {
                        // The shipped draw: the CAS revalidates the gate
                        // against the exact ticket it takes.
                        let mut cur = seen;
                        loop {
                            if cur >= TOTAL || cur > floor + LAG {
                                break;
                            }
                            match next[home].compare_exchange_weak(
                                cur,
                                cur + 1,
                                // sync: test fixture — same Relaxed pair
                                // as the executor's draw; only RMW
                                // atomicity is needed.
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            ) {
                                Ok(_) => {
                                    commit(home, &counts, &truth);
                                    break;
                                }
                                Err(now) => cur = now,
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for h in workers {
        h.join();
    }
}

/// The validate-then-`fetch_add` draw must be caught over-drawing: both
/// shard-0 workers validate the same counter value against a floor of 0
/// (shard 1 untouched), both draw, and the second ticket puts shard 0
/// `LAG + 2` rounds ahead.
#[test]
fn toctou_draw_violates_the_staleness_bound() {
    let outcome = explore_seeded(0x6A7E, 3_000, || draw_protocol(true));
    let v = outcome.assert_violation();
    assert!(
        v.message.contains("exceeds the bounded-staleness contract"),
        "unexpected violation: {}",
        v.message
    );
}

/// The gate-validated CAS draw keeps `max_skew <= LAG + 1` under every
/// explored schedule: a successful draw has revalidated the gate against
/// the exact ticket it takes, and stale floors only make the gate
/// stricter.
#[test]
fn cas_draw_keeps_the_staleness_bound() {
    explore_seeded(0xB10C4, 2_000, || draw_protocol(false)).assert_ok();
}

/// The CAS draw swept systematically with bounded preemptions around the
/// sequential base schedule.
#[test]
fn cas_draw_keeps_the_bound_exhaustive() {
    let outcome = explore_exhaustive(2, 3_000, || draw_protocol(false));
    outcome.assert_ok();
    assert!(
        outcome.schedules > 10,
        "exhaustive sweep explored suspiciously few schedules ({})",
        outcome.schedules
    );
}
