//! Property tests of the calibrated cost model: whatever the constants,
//! the model must be monotone in work and respect the structural
//! relations the paper's tables rely on.

use block_async_relax::gpu::timing::CommStrategy;
use block_async_relax::gpu::{TimingModel, Topology};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn more_nonzeros_cost_more(
        n in 100usize..20_000,
        nnz in 1_000usize..500_000,
        extra in 1usize..100_000,
    ) {
        let m = TimingModel::calibrated();
        prop_assert!(m.cpu_gauss_seidel_iteration(n, nnz + extra) > m.cpu_gauss_seidel_iteration(n, nnz));
        prop_assert!(m.gpu_jacobi_iteration(n, nnz + extra) > m.gpu_jacobi_iteration(n, nnz));
        prop_assert!(
            m.gpu_async_iteration(n, nnz + extra, nnz / 2, 5)
                > m.gpu_async_iteration(n, nnz, nnz / 2, 5)
        );
    }

    #[test]
    fn local_sweeps_monotone_and_k1_free(
        n in 100usize..20_000,
        nnz in 1_000usize..500_000,
        k in 1usize..12,
    ) {
        let m = TimingModel::calibrated();
        let local = nnz / 2;
        let t_k = m.gpu_async_iteration(n, nnz, local, k);
        let t_k1 = m.gpu_async_iteration(n, nnz, local, k + 1);
        prop_assert!(t_k1 > t_k, "extra sweeps must cost something");
        // k = 1 pays nothing for locality
        prop_assert!(
            (m.gpu_async_iteration(n, nnz, local, 1)
                - m.gpu_async_iteration(n, nnz, 0, 1))
                .abs()
                < 1e-15
        );
    }

    #[test]
    fn average_per_iteration_decreasing_in_total(
        n in 100usize..20_000,
        nnz in 1_000usize..500_000,
        total in 1usize..500,
    ) {
        let m = TimingModel::calibrated();
        let t = m.gpu_jacobi_iteration(n, nnz);
        prop_assert!(
            m.gpu_average_per_iteration(t, total) > m.gpu_average_per_iteration(t, total + 1)
        );
        // the average approaches the marginal cost from above
        prop_assert!(m.gpu_average_per_iteration(t, total) > t);
    }

    #[test]
    fn dk_never_cheaper_than_dc(
        g in 1usize..5,
        n in 1_000usize..50_000,
    ) {
        let m = TimingModel::calibrated();
        let topo = Topology::supermicro(g);
        let dc = m.multi_gpu_transfer(&topo, CommStrategy::Dc, n);
        let dk = m.multi_gpu_transfer(&topo, CommStrategy::Dk, n);
        prop_assert!(dk >= dc, "remote loads cannot beat bulk copies: {dk} vs {dc}");
    }

    #[test]
    fn per_device_compute_shrinks_with_more_gpus(
        g in 1usize..4,
        n in 1_000usize..50_000,
        nnz in 10_000usize..500_000,
    ) {
        let m = TimingModel::calibrated();
        // compare compute-only by zeroing the exchange overheads
        let mut m0 = m.clone();
        m0.amc_exchange_overhead = 0.0;
        m0.qpi_iteration_penalty = 0.0;
        let t_g = m0.multi_gpu_async_iteration(
            &Topology::supermicro(g), CommStrategy::Amc, n, nnz, nnz / 2, 5,
        );
        let t_g1 = m0.multi_gpu_async_iteration(
            &Topology::supermicro(g + 1), CommStrategy::Amc, n, nnz, nnz / 2, 5,
        );
        prop_assert!(t_g1 < t_g, "more devices must shrink per-iteration compute");
    }

    #[test]
    fn cross_socket_transfers_slower(
        bytes in 1usize..10_000_000,
    ) {
        let topo = Topology::supermicro(4);
        prop_assert!(topo.device_device_time(0, 2, bytes) > topo.device_device_time(0, 1, bytes));
        prop_assert!(topo.host_device_time(3, bytes) >= topo.host_device_time(0, bytes));
    }
}
