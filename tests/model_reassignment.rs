//! The recovery-handoff adoption election under the schedule explorer.
//!
//! `persistent.rs` reassigns an orphaned shard by a single CAS
//! (`Released -> Adopted(worker)`): among the survivors probing a
//! released shard, RMW atomicity picks exactly one owner. The broken
//! shape — load the state, observe `Released`, then *store* the adopted
//! tag — lets two survivors both observe `Released` before either store
//! lands, and both walk away believing they own the shard (double thaw,
//! double backlog replay, corrupted staleness accounting).
//!
//! Three tests: the shipped [`ShardState::try_adopt`] election must come
//! out single-owner under seeded and bounded-exhaustive schedules, the
//! load-then-store variant must be *caught* by the explorer, and
//! [`ShardState::release`] must refuse a shard that was never orphaned
//! (the spurious-death-declaration guard) no matter how the release races
//! the orphan.
//!
//! Run with `cargo test --features model`.
#![cfg(feature = "model")]

use block_async_relax::gpu::{ShardPhase, ShardState};
use block_async_relax::sync::model::{explore_exhaustive, explore_seeded, spawn};
use block_async_relax::sync::{Ordering, SyncUsize};
use std::sync::Arc;

/// Survivors racing for one released shard.
const SURVIVORS: usize = 3;

/// The shipped election on the real state machine: the shard is already
/// orphaned and released (the monitor's half of the handoff), and every
/// survivor races [`ShardState::try_adopt`]. Exactly one may win, and the
/// recorded adopter must be that winner.
fn cas_adoption() {
    let shard = Arc::new(ShardState::new());
    shard.orphan();
    assert!(shard.release(), "an orphaned shard must release");
    let wins: Arc<Vec<SyncUsize>> =
        Arc::new((0..SURVIVORS).map(|_| SyncUsize::new(0)).collect());
    let workers: Vec<_> = (0..SURVIVORS)
        .map(|w| {
            let (shard, wins) = (Arc::clone(&shard), Arc::clone(&wins));
            spawn(move || {
                if shard.try_adopt(w) {
                    // sync: per-worker tally, read post-join.
                    wins[w].fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in workers {
        h.join();
    }
    // sync: post-join reads — the join edges make every tally exact.
    let winners: Vec<usize> =
        (0..SURVIVORS).filter(|&w| wins[w].load(Ordering::Relaxed) > 0).collect();
    assert_eq!(
        winners.len(),
        1,
        "adoption elected {} owners ({winners:?}), want exactly 1",
        winners.len()
    );
    assert_eq!(shard.probe(), ShardPhase::Adopted, "a released shard with probers must end adopted");
    assert_eq!(shard.adopter(), Some(winners[0]), "the recorded adopter must be the CAS winner");
}

/// Mirror of the shard-state encoding, for the deliberately broken
/// variant below (the real constants are private to `persistent.rs`).
const RELEASED: usize = 2;
const ADOPTED_BASE: usize = 3;

/// The broken load-then-store adoption: observe `Released`, then store
/// the adopted tag. Two survivors can both pass the load before either
/// store lands — the double-ownership hole `try_adopt`'s CAS closes.
fn load_then_store_adoption() {
    let state = Arc::new(SyncUsize::new(RELEASED));
    let wins = Arc::new(SyncUsize::new(0));
    let workers: Vec<_> = (0..SURVIVORS)
        .map(|w| {
            let (state, wins) = (Arc::clone(&state), Arc::clone(&wins));
            spawn(move || {
                // sync: test fixture — the broken shape under audit: the
                // load and the store are two separate accesses, so the
                // observation can go stale before the claim lands.
                if state.load(Ordering::Acquire) == RELEASED {
                    // sync: test fixture — blind claim; overwrites any
                    // sibling's claim that raced in between.
                    state.store(ADOPTED_BASE + w, Ordering::Release);
                    // sync: win tally, read post-join.
                    wins.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in workers {
        h.join();
    }
    // sync: post-join read, ordered by the join edges.
    let n = wins.load(Ordering::Relaxed);
    assert_eq!(n, 1, "adoption elected {n} owners, want exactly 1");
}

/// The shipped CAS election is single-owner under seeded and
/// bounded-preemption-exhaustive schedules.
#[test]
fn cas_adoption_elects_exactly_one_owner() {
    explore_seeded(0xAD097, 1_000, cas_adoption).assert_ok();
    let outcome = explore_exhaustive(3, 20_000, cas_adoption);
    outcome.assert_ok();
    assert!(outcome.schedules > 10, "suspiciously few schedules ({})", outcome.schedules);
}

/// The explorer must catch the load-then-store variant double-owning the
/// shard — the seeded search finds an interleaving where two survivors
/// pass the load before either store.
#[test]
fn load_then_store_adoption_double_owns() {
    let outcome = explore_seeded(0xBAD0, 1_000, load_then_store_adoption);
    let v = outcome.assert_violation();
    assert!(
        v.message.contains("elected"),
        "unexpected violation (want the double-owner assert): {}",
        v.message
    );
}

/// `release` refuses a never-orphaned shard regardless of how it races
/// the orphan: a spurious death declaration must not leak a pooled shard
/// into the adoption protocol.
#[test]
fn release_never_leaks_a_pooled_shard() {
    let body = || {
        let shard = Arc::new(ShardState::new());
        let released = Arc::new(SyncUsize::new(0));
        let monitor = {
            let (shard, released) = (Arc::clone(&shard), Arc::clone(&released));
            spawn(move || {
                if shard.release() {
                    // sync: outcome tally, read post-join.
                    released.fetch_add(1, Ordering::Relaxed);
                }
            })
        };
        let dying = {
            let shard = Arc::clone(&shard);
            spawn(move || shard.orphan())
        };
        monitor.join();
        dying.join();
        let phase = shard.probe();
        // sync: post-join read — exact under the join edges.
        if released.load(Ordering::Relaxed) > 0 {
            assert_eq!(phase, ShardPhase::Released, "a successful release must stick");
        } else {
            assert_eq!(
                phase,
                ShardPhase::Orphaned,
                "a refused release must leave the late orphan in place"
            );
        }
    };
    explore_seeded(0x5E1F, 1_000, body).assert_ok();
    let outcome = explore_exhaustive(3, 20_000, body);
    outcome.assert_ok();
    assert!(outcome.complete, "the two-thread race tree should be fully enumerable");
}
