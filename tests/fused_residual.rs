//! Acceptance tests for the fused residual estimation pipeline: the
//! worker-side sub-norm estimates must agree with the exact residual
//! (bit-tight at `k = 1`, where the Jacobi delta identity makes the
//! estimate the exact residual of the read snapshot), the monitor's
//! fused fast path must never be able to stop a run the exact check
//! would reject (the confirmation gate, probed with deliberately lying
//! estimators in both directions), and the poll-cost pacing floor must
//! keep the monitor's poll count bounded when each check is expensive —
//! the property that makes the concurrent monitor affordable at
//! multi-million-row sizes.

use block_async_relax::core::async_block::AsyncJacobiKernel;
use block_async_relax::core::{LocalSweep, ResidualMonitor, FUSED_GUARD_BAND, URGENT_BAND};
use block_async_relax::gpu::kernel::AllowAll;
use block_async_relax::gpu::schedule::RoundRobin;
use block_async_relax::gpu::{
    BlockKernel, BlockScratch, ConvergenceMonitor, PersistentExecutor, PersistentOptions,
    PersistentWorkspace, XView,
};
use block_async_relax::sparse::gen::{laplacian_2d_5pt, random_diag_dominant};
use block_async_relax::sparse::{BlockPlan, CsrMatrix, ParContext, RowPartition};
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// Independent residual check: `||b - Ax||_2 / ||b||_2` computed directly,
/// so no assertion trusts the solver's own bookkeeping.
fn rel_residual(a: &CsrMatrix, b: &[f64], x: &[f64]) -> f64 {
    let ax = a.mul_vec(x).expect("square");
    let num: f64 = b.iter().zip(&ax).map(|(bi, ai)| (bi - ai) * (bi - ai)).sum();
    let den: f64 = b.iter().map(|bi| bi * bi).sum();
    (num / den).sqrt()
}

/// A deterministic pseudo-random iterate, varied by seed.
fn probe_iterate(n: usize, seed: u64) -> Vec<f64> {
    (0..n).map(|i| (seed as f64 * 0.61 + i as f64 * 0.73).sin() * 2.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At `k = 1` the Jacobi update law makes the fused estimate the
    /// *exact* residual of the snapshot the update read:
    /// `r_i = a_ii (sweep_i - x_i) = (new_i - x_i) / (tau * inv_diag_i)`.
    /// Summed over all blocks against one fixed iterate, the estimates
    /// must reproduce `||b - A x||^2` to rounding.
    #[test]
    fn fused_estimate_is_exact_at_k1(
        seed in 0u64..300,
        block in 2usize..17,
        damp_idx in 0usize..2,
    ) {
        let n = 48;
        let a = random_diag_dominant(n, 4, 1.4, seed);
        let rhs = a.mul_vec(&vec![1.0; n]).expect("square");
        let p = RowPartition::uniform(n, block).expect("partition");
        let damping = [1.0, 0.8][damp_idx];
        let kernel =
            AsyncJacobiKernel::with_sweep(&a, &rhs, &p, 1, damping, LocalSweep::Jacobi)
                .expect("diag dominant");
        let x = probe_iterate(n, seed);
        let view = XView::Plain(&x);
        let mut scratch = BlockScratch::new();
        let mut fused = 0.0;
        for b in 0..kernel.n_blocks() {
            let (s, e) = kernel.block_range(b);
            let mut out = vec![0.0; e - s];
            let est = kernel
                .update_block_estimating(b, &view, &mut out, &mut scratch)
                .expect("the async-(k) kernel must estimate");
            prop_assert!(est.is_finite() && est >= 0.0);
            fused += est;
        }
        let ax = a.mul_vec(&x).expect("square");
        let exact: f64 = rhs.iter().zip(&ax).map(|(b, v)| (b - v) * (b - v)).sum();
        let rel = (fused - exact).abs() / exact.max(1e-30);
        prop_assert!(rel < 1e-8, "fused {fused} vs exact {exact}, rel {rel}");
    }

    /// At `k > 1` the Jacobi estimate is the residual of the *previous*
    /// inner iterate (with the off-block part frozen at the snapshot) —
    /// checked against a from-scratch recomputation: run `k - 1` sweeps
    /// separately to reconstruct that iterate, splice it into the
    /// snapshot, and evaluate the true residual restricted to the block.
    #[test]
    fn fused_estimate_matches_reference_recomputation_at_k3(
        seed in 0u64..150,
        block in 3usize..13,
    ) {
        let n = 42;
        let k = 3;
        let a = random_diag_dominant(n, 4, 1.4, seed);
        let rhs = a.mul_vec(&vec![1.0; n]).expect("square");
        let p = RowPartition::uniform(n, block).expect("partition");
        let kernel = AsyncJacobiKernel::with_sweep(&a, &rhs, &p, k, 1.0, LocalSweep::Jacobi)
            .expect("diag dominant");
        let prev_kernel =
            AsyncJacobiKernel::with_sweep(&a, &rhs, &p, k - 1, 1.0, LocalSweep::Jacobi)
                .expect("diag dominant");
        let x = probe_iterate(n, seed ^ 0x5a5a);
        let view = XView::Plain(&x);
        let mut scratch = BlockScratch::new();
        for b in 0..kernel.n_blocks() {
            let (s, e) = kernel.block_range(b);
            let mut out = vec![0.0; e - s];
            let est = kernel
                .update_block_estimating(b, &view, &mut out, &mut scratch)
                .expect("estimate");
            let mut prev = vec![0.0; e - s];
            prev_kernel.update_block_with(b, &view, &mut prev, &mut scratch);
            // The reference: residual rows of the block against the
            // snapshot with the block's rows replaced by the (k-1)-th
            // inner iterate — exactly what the estimator claims to price.
            let mut spliced = x.clone();
            spliced[s..e].copy_from_slice(&prev);
            let ax = a.mul_vec(&spliced).expect("square");
            let reference: f64 =
                (s..e).map(|i| (rhs[i] - ax[i]) * (rhs[i] - ax[i])).sum();
            // The floor absorbs blocks that have already converged to
            // rounding level, where both sides are pure noise (~1e-31).
            let rel = (est - reference).abs() / reference.max(1e-20);
            prop_assert!(rel < 1e-8, "block {b}: est {est} vs reference {reference}");
        }
    }

    /// The Gauss-Seidel path cannot use the delta identity (the sweep is
    /// in place), so it prices an explicit local residual pass — which
    /// must always produce a finite, non-negative sub-norm.
    #[test]
    fn gs_estimate_is_finite_and_nonnegative(seed in 0u64..100) {
        let n = 40;
        let a = random_diag_dominant(n, 4, 1.5, seed);
        let rhs = a.mul_vec(&vec![1.0; n]).expect("square");
        let p = RowPartition::uniform(n, 8).expect("partition");
        let kernel =
            AsyncJacobiKernel::with_sweep(&a, &rhs, &p, 2, 1.0, LocalSweep::GaussSeidel)
                .expect("diag dominant");
        let x = probe_iterate(n, seed);
        let view = XView::Plain(&x);
        let mut scratch = BlockScratch::new();
        for b in 0..kernel.n_blocks() {
            let (s, e) = kernel.block_range(b);
            let mut out = vec![0.0; e - s];
            let est = kernel
                .update_block_estimating(b, &view, &mut out, &mut scratch)
                .expect("estimate");
            prop_assert!(est.is_finite() && est >= 0.0, "block {b}: {est}");
        }
    }

    /// Satellite: the parallel plan compile is bit-identical to the
    /// sequential one on random systems, for every thread count
    /// (`BlockPlan` derives `PartialEq` over every packed array).
    #[test]
    fn parallel_compile_is_bit_identical_on_random_systems(
        seed in 0u64..200,
        block in 3usize..20,
    ) {
        let n = 72;
        let a = random_diag_dominant(n, 5, 1.3, seed);
        let p = RowPartition::uniform(n, block).expect("partition");
        let seq = BlockPlan::compile_with_ctx(&a, &p, None, ParContext::new(1))
            .expect("compile");
        for threads in [2usize, 5, 16] {
            let par = BlockPlan::compile_with_ctx(&a, &p, None, ParContext::new(threads))
                .expect("compile");
            prop_assert_eq!(&seq, &par, "threads {}", threads);
        }
    }
}

/// A kernel that updates honestly but lies about its residual estimate —
/// the adversarial probe for the confirmation gate.
struct LyingKernel<'a> {
    inner: AsyncJacobiKernel<'a>,
    claim: f64,
}

impl BlockKernel for LyingKernel<'_> {
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn n_blocks(&self) -> usize {
        self.inner.n_blocks()
    }
    fn block_range(&self, b: usize) -> (usize, usize) {
        self.inner.block_range(b)
    }
    fn update_block(&self, b: usize, x: &XView<'_>, out: &mut [f64]) {
        self.inner.update_block(b, x, out);
    }
    fn update_block_with(
        &self,
        b: usize,
        x: &XView<'_>,
        out: &mut [f64],
        scratch: &mut BlockScratch,
    ) {
        self.inner.update_block_with(b, x, out, scratch);
    }
    fn update_block_estimating(
        &self,
        b: usize,
        x: &XView<'_>,
        out: &mut [f64],
        scratch: &mut BlockScratch,
    ) -> Option<f64> {
        self.inner.update_block_with(b, x, out, scratch);
        Some(self.claim)
    }
}

fn run_lying_solve(claim: f64) -> (Vec<f64>, CsrMatrix, Vec<f64>, block_async_relax::gpu::PersistentReport) {
    let a = laplacian_2d_5pt(8); // n = 64
    let n = a.n_rows();
    let rhs = a.mul_vec(&vec![1.0; n]).expect("square");
    let p = RowPartition::uniform(n, 8).expect("partition");
    let inner = AsyncJacobiKernel::new(&a, &rhs, &p, 5, 1.0).expect("diag dominant");
    let kernel = LyingKernel { inner, claim };
    let tol = 1e-8;
    let exec = PersistentExecutor::new(PersistentOptions {
        n_workers: 4,
        ..PersistentOptions::default()
    });
    let mut monitor = ResidualMonitor::new(&a, &rhs, tol, 1);
    let mut ws = PersistentWorkspace::new();
    let mut x = vec![0.0; n];
    let (_, report) =
        exec.run(&kernel, &mut x, 20_000, &mut RoundRobin, &AllowAll, &mut monitor, &mut ws);
    (x, a, rhs, report)
}

/// The confirmation gate, attacked from below: a kernel that claims a
/// zero residual on every update. If the fused estimate could declare
/// convergence, the run would stop after the first poll with a residual
/// near 1; instead every poll must escalate to the exact check, and the
/// run stops only once the true residual crosses the tolerance.
#[test]
fn lying_zero_estimate_cannot_stop_before_the_exact_tolerance() {
    let (x, a, rhs, report) = run_lying_solve(0.0);
    assert!(report.stopped_at.is_some(), "solve must still converge");
    assert!(report.checks >= 1, "exact checks must have run");
    assert_eq!(
        report.fused_checks, 0,
        "an estimate at the tolerance must always escalate, never skip"
    );
    let rr = rel_residual(&a, &rhs, &x);
    assert!(rr <= 1e-8, "stopped with residual {rr} above the tolerance");
}

/// The gate attacked from above: a kernel that claims an enormous
/// residual forever. The fused path then skips polls, but the forced
/// exact check every `FUSED_FORCE_EXACT_EVERY` fused polls still finds
/// convergence — a lying estimator can delay the stop, never prevent it
/// (and never fake it).
#[test]
fn lying_huge_estimate_cannot_starve_the_exact_check() {
    let (x, a, rhs, report) = run_lying_solve(1e30);
    assert!(report.stopped_at.is_some(), "forced exact checks must still stop the run");
    assert!(report.fused_checks > 0, "the huge estimate should have skipped some polls");
    assert!(report.checks >= 1);
    let rr = rel_residual(&a, &rhs, &x);
    assert!(rr <= 1e-8, "stopped with residual {rr} above the tolerance");
}

/// The endgame waiver is armed by the exact check, never the estimate:
/// `urgent()` stays false while checks land far from the tolerance (the
/// executor keeps its expensive-poll pacing floor), arms once a check
/// lands within `URGENT_BAND` of it, and disarms again if the residual
/// moves back out of the window. Deterministic — iterates with known
/// relative residuals are fed to the monitor directly.
#[test]
fn urgency_follows_the_exact_residual_into_the_endgame() {
    let a = laplacian_2d_5pt(8); // n = 64
    let n = a.n_rows();
    let x_true = vec![1.0; n];
    let rhs = a.mul_vec(&x_true).expect("square");
    let tol = 1e-8;
    let mut monitor = ResidualMonitor::new(&a, &rhs, tol, 1);
    assert!(!monitor.urgent(), "a fresh monitor has no evidence of nearness");

    // rr scales linearly in the perturbation: measure it at delta = 1,
    // then place iterates at chosen multiples of the tolerance.
    let mut probe = x_true.clone();
    probe[0] += 1.0;
    let base = rel_residual(&a, &rhs, &probe);
    let at = |rr_target: f64| {
        let mut x = x_true.clone();
        x[0] += rr_target / base;
        x
    };

    assert!(!monitor.check(1, &at(tol * URGENT_BAND * 100.0)), "far from converged");
    assert!(!monitor.urgent(), "a check far above the band must not arm the waiver");

    assert!(!monitor.check(2, &at(tol * URGENT_BAND / 2.0)), "inside the band, above tol");
    assert!(monitor.urgent(), "a near-miss check must arm the waiver");

    assert!(!monitor.check(3, &at(tol * URGENT_BAND * 100.0)));
    assert!(!monitor.urgent(), "moving back out of the window must disarm it");

    assert!(monitor.check(4, &at(tol / 2.0)), "below tol stops the run");
}

/// A monitor that records the fused estimate offered for each poll,
/// always escalates, and compares the estimate against the exact
/// residual computed from the same poll's snapshot.
struct AuditMonitor<'a> {
    inner: ResidualMonitor<'a>,
    rhs_norm: f64,
    pending: Option<f64>,
    worst_ratio: f64,
    audited: usize,
}

impl ConvergenceMonitor for AuditMonitor<'_> {
    fn period(&self) -> usize {
        1
    }
    fn check(&mut self, gi: usize, x: &[f64]) -> bool {
        let stop = self.inner.check(gi, x);
        let exact = self.inner.last_check.expect("just checked").1;
        if let Some(est) = self.pending.take() {
            if exact > 0.0 && est > 0.0 {
                self.worst_ratio = self.worst_ratio.max((est / exact).max(exact / est));
                self.audited += 1;
            }
        }
        stop
    }
    fn fused_check(&mut self, _gi: usize, estimate_sq: f64) -> bool {
        self.pending = Some(estimate_sq.sqrt() / self.rhs_norm);
        true
    }
}

/// The guard band is honest: at `k = 1` with one worker (so estimates
/// lag the snapshot by at most a round), the fused relative-residual
/// estimate agrees with the exact residual at every poll to well within
/// `FUSED_GUARD_BAND` — the margin inside which the monitor refuses to
/// skip exact checks. How many polls land inside any one solve depends
/// on build flavour and scheduling (a release-mode solve of this size
/// can outrun the monitor entirely), so the audit accumulates across
/// repeated solves until enough polls were scored.
#[test]
fn fused_estimate_tracks_exact_residual_within_the_guard_band() {
    let a = laplacian_2d_5pt(16); // n = 256
    let n = a.n_rows();
    let rhs = a.mul_vec(&vec![1.0; n]).expect("square");
    let p = RowPartition::uniform(n, 16).expect("partition");
    let kernel = AsyncJacobiKernel::new(&a, &rhs, &p, 1, 1.0).expect("diag dominant");
    let rhs_norm = rhs.iter().map(|b| b * b).sum::<f64>().sqrt();
    let exec = PersistentExecutor::new(PersistentOptions {
        n_workers: 1,
        monitor_pause: Duration::from_micros(1),
        ..PersistentOptions::default()
    });
    let mut worst_ratio = 1.0f64;
    let mut audited = 0usize;
    for _ in 0..200 {
        let mut monitor = AuditMonitor {
            inner: ResidualMonitor::new(&a, &rhs, 1e-8, 1),
            rhs_norm,
            pending: None,
            worst_ratio: 1.0,
            audited: 0,
        };
        let mut ws = PersistentWorkspace::new();
        let mut x = vec![0.0; n];
        let (_, report) =
            exec.run(&kernel, &mut x, 50_000, &mut RoundRobin, &AllowAll, &mut monitor, &mut ws);
        assert!(report.stopped_at.is_some(), "solve must converge");
        worst_ratio = worst_ratio.max(monitor.worst_ratio);
        audited += monitor.audited;
        if audited >= 10 {
            break;
        }
    }
    assert!(audited >= 10, "too few audited polls across 200 solves: {audited}");
    assert!(
        worst_ratio < FUSED_GUARD_BAND,
        "estimate strayed {worst_ratio}x from the exact residual — outside the guard band"
    );
}

/// A monitor whose every exact check costs a fixed wall-clock amount and
/// never stops — the probe for the poll-cost pacing floor.
struct SlowMonitor {
    cost: Duration,
}

impl ConvergenceMonitor for SlowMonitor {
    fn period(&self) -> usize {
        1
    }
    fn check(&mut self, _gi: usize, _x: &[f64]) -> bool {
        std::thread::sleep(self.cost);
        false
    }
}

/// Satellite regression: the monitor paces itself by the measured poll
/// cost, so an expensive check cannot fire back-to-back no matter how
/// fast the watermark advances. With the 3x-cost sleep floor, poll count
/// is bounded by roughly elapsed / (4 * cost); without it (period 1,
/// fast rounds) polls chain continuously and the count approaches
/// elapsed / cost.
#[test]
fn poll_count_stays_bounded_when_checks_are_expensive() {
    let a = laplacian_2d_5pt(32); // n = 1024
    let n = a.n_rows();
    let rhs = a.mul_vec(&vec![1.0; n]).expect("square");
    let p = RowPartition::uniform(n, 16).expect("partition");
    let kernel = AsyncJacobiKernel::new(&a, &rhs, &p, 5, 1.0).expect("diag dominant");
    let cost = Duration::from_millis(4);
    let exec = PersistentExecutor::new(PersistentOptions {
        n_workers: 2,
        ..PersistentOptions::default()
    });
    let mut monitor = SlowMonitor { cost };
    let mut ws = PersistentWorkspace::new();
    let mut x = vec![0.0; n];
    let started = Instant::now();
    let (_, report) =
        exec.run(&kernel, &mut x, 2_000, &mut RoundRobin, &AllowAll, &mut monitor, &mut ws);
    let elapsed = started.elapsed();
    let polls = report.checks + report.fused_checks;
    assert!(polls >= 1, "the monitor never polled at all");
    // Generous bound (floor gives ~elapsed / (4 * cost)): regression to
    // unpaced polling lands near elapsed / cost and fails it clearly.
    let bound = (elapsed.as_secs_f64() / (2.0 * cost.as_secs_f64())).ceil() as usize + 5;
    assert!(
        polls <= bound,
        "{polls} polls of cost {cost:?} in {elapsed:?} — pacing floor is not applied"
    );
}
